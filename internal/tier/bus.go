package tier

import (
	"fmt"
	"sync"
	"sync/atomic"

	"smartwatch/internal/flowcache"
	"smartwatch/internal/packet"
)

// Kind classifies a control-plane event.
type Kind uint8

// Event kinds — the control-plane taxonomy (DESIGN.md §8.2).
const (
	// KindWhitelist: a flow was judged benign; the switch should fast-path
	// it and the datapath should release its pinned record.
	KindWhitelist Kind = iota
	// KindBlacklist: a source was judged malicious; the switch should drop
	// its traffic.
	KindBlacklist
	// KindUnpin: a detector released a pinned FlowCache record.
	KindUnpin
	// KindInterval: a monitoring interval closed; tiers flush and
	// re-program.
	KindInterval
	// KindModeSwitch: a FlowCache shard flipped between General and Lite.
	KindModeSwitch
	kindCount
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindWhitelist:
		return "whitelist"
	case KindBlacklist:
		return "blacklist"
	case KindUnpin:
		return "unpin"
	case KindInterval:
		return "interval"
	case KindModeSwitch:
		return "mode-switch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Kinds lists every event kind, in declaration order — the control API's
// enumerable taxonomy.
func Kinds() []Kind {
	out := make([]Kind, 0, int(kindCount))
	for k := Kind(0); k < kindCount; k++ {
		out = append(out, k)
	}
	return out
}

// ParseKind maps a kind's String() name back to the Kind — the inverse
// used by the daemon's control API to accept kind names over the wire.
func ParseKind(s string) (Kind, error) {
	for k := Kind(0); k < kindCount; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("tier: unknown event kind %q", s)
}

// Event is one typed control-plane message. The set is closed: every event
// type lives in this package so subscribers can type-assert exhaustively.
type Event interface {
	Kind() Kind
}

// WhitelistEvent requests a benign-flow install at the switch and a pin
// release at the datapath.
type WhitelistEvent struct {
	Key packet.FlowKey
	// Origin names the publisher ("detector", "hooks", "topk", ...).
	Origin string
}

// Kind implements Event.
func (WhitelistEvent) Kind() Kind { return KindWhitelist }

// BlacklistEvent requests a drop rule for the source at the switch.
type BlacklistEvent struct {
	Addr   packet.Addr
	Origin string
}

// Kind implements Event.
func (BlacklistEvent) Kind() Kind { return KindBlacklist }

// UnpinEvent releases a pinned FlowCache record.
type UnpinEvent struct {
	Key    packet.FlowKey
	Origin string
}

// Kind implements Event.
func (UnpinEvent) Kind() Kind { return KindUnpin }

// IntervalEvent marks the close of one monitoring interval. Subscribers
// run the control-loop heartbeat: the switch closes queries and steers
// fired subsets, the host drains eviction rings and flushes the flow log.
type IntervalEvent struct {
	// Ts is the interval's closing timestamp (virtual ns).
	Ts int64
	// Seq counts intervals from 1.
	Seq uint64
}

// Kind implements Event.
func (IntervalEvent) Kind() Kind { return KindInterval }

// ModeSwitchEvent reports a FlowCache shard flipping operating mode
// (Algorithm 4).
type ModeSwitchEvent struct {
	Shard int
	Mode  flowcache.Mode
	// Rate is the shard's smoothed arrival rate (pps) at the flip.
	Rate float64
	Ts   int64
}

// Kind implements Event.
func (ModeSwitchEvent) Kind() Kind { return KindModeSwitch }

// Handler consumes one event.
type Handler func(Event)

type subscriber struct {
	name string
	fn   Handler
}

// BusStats counts bus traffic.
type BusStats struct {
	// Published counts events offered per kind.
	Published [int(kindCount)]uint64
	// Delivered counts successful subscriber invocations.
	Delivered uint64
	// Panics counts subscriber panics (recovered; see Bus.Publish).
	Panics uint64
}

// Add returns the field-wise sum s + o — the merge the cluster runner
// applies across per-worker buses when folding reports.
func (s BusStats) Add(o BusStats) BusStats {
	out := s
	for i := range out.Published {
		out.Published[i] += o.Published[i]
	}
	out.Delivered += o.Delivered
	out.Panics += o.Panics
	return out
}

// PublishedFor returns the publish count for one kind.
func (s BusStats) PublishedFor(k Kind) uint64 {
	if int(k) >= len(s.Published) {
		return 0
	}
	return s.Published[k]
}

// Bus is the typed control-plane event bus. Publish is synchronous and
// ordered: subscribers of the event's kind run immediately, in
// subscription order, before Publish returns — so the tier pipeline stays
// deterministic and the bus adds no queue to reason about. A panicking
// subscriber is isolated: the panic is recovered, counted, and the
// remaining subscribers still receive the event.
//
// Bus is safe for concurrent use; publishes from parallel shard workers
// serialise on an internal mutex (control events are rare, so the lock is
// uncontended in practice).
type Bus struct {
	mu   sync.Mutex
	subs [int(kindCount)][]subscriber
	// The traffic counters are atomics, NOT guarded by mu: subscribers
	// (e.g. the interval metrics collector) may call Stats from inside a
	// delivery, while Publish still holds mu — a mutex-guarded read there
	// would self-deadlock.
	published [int(kindCount)]atomic.Uint64
	delivered atomic.Uint64
	panics    atomic.Uint64
	lastPanic atomic.Pointer[string]
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers fn for events of kind k under a diagnostic name.
// Subscribers run in subscription order. It panics on an unknown kind or
// nil handler (programmer errors).
func (b *Bus) Subscribe(k Kind, name string, fn Handler) {
	if k >= kindCount {
		panic(fmt.Sprintf("tier: subscribe to unknown kind %d", k))
	}
	if fn == nil {
		panic("tier: nil handler for " + name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs[k] = append(b.subs[k], subscriber{name: name, fn: fn})
}

// Publish delivers e to every subscriber of its kind, in subscription
// order, before returning.
func (b *Bus) Publish(e Event) {
	k := e.Kind()
	if k >= kindCount {
		panic(fmt.Sprintf("tier: publish of unknown kind %d", k))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.published[k].Add(1)
	for _, s := range b.subs[k] {
		b.deliver(s, e)
	}
}

// deliver runs one subscriber with panic isolation.
func (b *Bus) deliver(s subscriber, e Event) {
	defer func() {
		if r := recover(); r != nil {
			b.panics.Add(1)
			msg := fmt.Sprintf("%s: %v", s.name, r)
			b.lastPanic.Store(&msg)
		}
	}()
	s.fn(e)
	b.delivered.Add(1)
}

// Stats returns a snapshot of the bus counters. Lock-free, so subscribers
// may call it from inside a delivery (the in-flight event is counted as
// published but not yet delivered).
func (b *Bus) Stats() BusStats {
	var s BusStats
	for i := range b.published {
		s.Published[i] = b.published[i].Load()
	}
	s.Delivered = b.delivered.Load()
	s.Panics = b.panics.Load()
	return s
}

// LastPanic describes the most recent recovered subscriber panic ("" when
// none occurred).
func (b *Bus) LastPanic() string {
	if p := b.lastPanic.Load(); p != nil {
		return *p
	}
	return ""
}

// Subscribers lists the diagnostic names registered for a kind, in
// delivery order.
func (b *Bus) Subscribers(k Kind) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if k >= kindCount {
		return nil
	}
	out := make([]string, len(b.subs[k]))
	for i, s := range b.subs[k] {
		out[i] = s.name
	}
	return out
}
