package tier

import (
	"smartwatch/internal/obs"
)

// pipelineMetrics holds a pipeline's per-stage instruments. The pipeline
// carries a nil pointer when metrics are disabled, so the hot path pays
// exactly one predictable branch per stage (proven by
// BenchmarkPipelineDisabledMetrics).
type pipelineMetrics struct {
	// queueDelay observes ctx.SNIC.QueueDelayNs once per packet at the
	// first stage — the virtual-time latency the packet accumulated before
	// entering this pipeline (zero on the wire side, the input-buffer wait
	// on the sNIC side).
	queueDelay *obs.Histogram
	stages     []stageMetrics
}

// stageMetrics counts one stage's traffic and verdict outcomes.
type stageMetrics struct {
	packets *obs.Counter
	// verdicts indexes by Verdict (Continue, ForwardDirect, DropAtSwitch).
	verdicts [3]*obs.Counter
}

// Instrument attaches per-stage metrics to the pipeline under
// "tier.<prefix>." names:
//
//	tier.<prefix>.<stage>.packets            packets entering the stage
//	tier.<prefix>.<stage>.verdict.<verdict>  outcome after the stage ran
//	tier.<prefix>.queue_delay_ns             histogram, first stage only
//
// Call once at wiring time, before processing. A nil registry leaves the
// pipeline uninstrumented (the disabled fast path).
func (pl *Pipeline) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	m := &pipelineMetrics{
		queueDelay: reg.Histogram("tier."+prefix+".queue_delay_ns", obs.ExpBounds(100, 4, 10)),
		stages:     make([]stageMetrics, len(pl.stages)),
	}
	for i, s := range pl.stages {
		base := "tier." + prefix + "." + s.Name()
		m.stages[i] = stageMetrics{
			packets: reg.Counter(base + ".packets"),
			verdicts: [3]*obs.Counter{
				reg.Counter(base + ".verdict." + Continue.String()),
				reg.Counter(base + ".verdict." + ForwardDirect.String()),
				reg.Counter(base + ".verdict." + DropAtSwitch.String()),
			},
		}
	}
	pl.m = m
}

// ObserveStage records that stage i just ran on ctx: one packet in, one
// verdict out, plus the queue-delay sample when i is the first stage.
// No-op when the pipeline is uninstrumented. Exported for drivers that
// run stages outside Process/ProcessBatch (core's batched drive steers
// per-packet between vectored stages) so batched and per-packet runs
// count identically.
func (pl *Pipeline) ObserveStage(i int, ctx *Context) {
	m := pl.m
	if m == nil {
		return
	}
	if i == 0 {
		m.queueDelay.Observe(ctx.SNIC.QueueDelayNs)
	}
	sm := &m.stages[i]
	sm.packets.Add(1)
	if v := int(ctx.Verdict); v < len(sm.verdicts) {
		sm.verdicts[v].Add(1)
	}
}
