// Package tier defines the explicit tier pipeline of the SmartWatch
// platform: Ingest → Steer → Datapath → Host, the paper's three
// cooperating layers (P4 switch, sNIC FlowCache, host NFs) plus the
// ingest bookkeeping that feeds them. Each packet travels as one Context
// through an ordered list of Stages; cross-tier control actions (detector
// verdicts, interval flushes, mode switchovers, whitelist/blacklist
// installs) travel as typed events on the Bus instead of direct
// struct-to-struct calls, so every tier can be sharded, swapped or
// observed independently (DESIGN.md §8).
//
// The package deliberately knows nothing about internal/core or
// internal/detect: stages live next to the tier they model (p4switch,
// host) or in core where they glue tiers together, and the dependency
// arrows all point here, never back out.
package tier

import (
	"smartwatch/internal/flowcache"
	"smartwatch/internal/packet"
	"smartwatch/internal/snic"
)

// Verdict is a stage's terminal decision about one packet. Continue hands
// the packet to the next stage; anything else short-circuits the pipeline.
type Verdict uint8

// Verdicts.
const (
	// Continue passes the packet to the next stage.
	Continue Verdict = iota
	// ForwardDirect bypasses the remaining tiers entirely (switch fast
	// path for whitelisted/unsteered traffic).
	ForwardDirect
	// DropAtSwitch discards the packet at the switch (blacklist hit).
	DropAtSwitch
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case ForwardDirect:
		return "forward-direct"
	case DropAtSwitch:
		return "drop-at-switch"
	default:
		return "continue"
	}
}

// Context carries one packet through the pipeline. A single Context is
// reused across packets by each driving goroutine (Reset clears it), so
// stages must not retain pointers into it past Handle.
type Context struct {
	// Pkt is the packet under processing.
	Pkt *packet.Packet
	// SNIC carries datapath observations (queueing delay) for stages that
	// run inside the sNIC simulation; zero on the wire side.
	SNIC snic.Ctx
	// Verdict short-circuits the pipeline when set != Continue.
	Verdict Verdict
	// Rec is the packet's FlowCache record, set by the datapath stage (nil
	// on a host punt).
	Rec *flowcache.Record
	// Res is the FlowCache operation report for this packet.
	Res flowcache.Result
	// Punted marks a packet the datapath could not hold (every candidate
	// record pinned): the host takes it whole.
	Punted bool
	// ToHost marks a packet a detector forwarded to a host NF.
	ToHost bool
	// HostDeliveries counts SR-IOV deliveries performed for this packet
	// (a punted packet a detector also forwards is delivered twice, as on
	// the hardware).
	HostDeliveries int
	// Cost is the sNIC cost the datapath reports to the simulator.
	Cost snic.Cost

	// Hash and Key are the packet's flow hash and canonical key when
	// HasFlowID is set — pre-computed by a batching driver so stages need
	// not re-canonicalise the tuple. Stages must treat them as read-only
	// and fall back to Pkt.Hash()/Pkt.Key() when HasFlowID is false.
	Hash      uint64
	Key       packet.FlowKey
	HasFlowID bool
}

// Reset prepares the context for a new packet, clearing every per-packet
// field.
func (c *Context) Reset(p *packet.Packet) {
	*c = Context{Pkt: p}
}

// Stage is one tier of the pipeline.
type Stage interface {
	// Name identifies the stage ("ingest", "steer", "datapath", "host").
	Name() string
	// Handle processes the packet, mutating the context.
	Handle(ctx *Context)
}

// Pipeline is an ordered list of stages sharing a Context per packet.
type Pipeline struct {
	stages []Stage
	// scratch is ProcessBatch's survivor vector, reused across batches.
	scratch []*Context
	// m is the optional per-stage instrumentation (nil when metrics are
	// disabled; see Instrument).
	m *pipelineMetrics
}

// NewPipeline builds a pipeline; nil stages are skipped.
func NewPipeline(stages ...Stage) *Pipeline {
	pl := &Pipeline{}
	for _, s := range stages {
		if s != nil {
			pl.stages = append(pl.stages, s)
		}
	}
	return pl
}

// Process runs the stages in order, stopping at the first non-Continue
// verdict, which it returns.
func (pl *Pipeline) Process(ctx *Context) Verdict {
	for i, s := range pl.stages {
		s.Handle(ctx)
		if pl.m != nil {
			pl.ObserveStage(i, ctx)
		}
		if ctx.Verdict != Continue {
			return ctx.Verdict
		}
	}
	return ctx.Verdict
}

// Names lists the stage names in execution order.
func (pl *Pipeline) Names() []string {
	out := make([]string, len(pl.stages))
	for i, s := range pl.stages {
		out[i] = s.Name()
	}
	return out
}
