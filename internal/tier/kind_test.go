package tier

import "testing"

func TestParseKindRoundTrip(t *testing.T) {
	ks := Kinds()
	if len(ks) != int(kindCount) {
		t.Fatalf("Kinds() returned %d kinds, want %d", len(ks), int(kindCount))
	}
	for _, k := range ks {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("no-such-kind"); err == nil {
		t.Fatal("ParseKind accepted an unknown name")
	}
}
