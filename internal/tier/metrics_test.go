package tier

import (
	"testing"

	"smartwatch/internal/obs"
	"smartwatch/internal/packet"
)

func TestPipelineInstrumentCountsStagesAndVerdicts(t *testing.T) {
	a := &stubStage{name: "ingest"}
	b := &stubStage{name: "steer", verdict: DropAtSwitch}
	c := &stubStage{name: "datapath"}
	pl := NewPipeline(a, b, c)
	reg := obs.NewRegistry()
	pl.Instrument(reg, "wire")

	var ctx Context
	p := packet.Packet{}
	ctx.Reset(&p)
	pl.Process(&ctx)

	s := reg.Snapshot(0)
	if got := s.Counter("tier.wire.ingest.packets"); got != 1 {
		t.Errorf("ingest.packets = %d, want 1", got)
	}
	if got := s.Counter("tier.wire.ingest.verdict.continue"); got != 1 {
		t.Errorf("ingest continue = %d, want 1", got)
	}
	if got := s.Counter("tier.wire.steer.packets"); got != 1 {
		t.Errorf("steer.packets = %d, want 1", got)
	}
	if got := s.Counter("tier.wire.steer.verdict.drop-at-switch"); got != 1 {
		t.Errorf("steer drop = %d, want 1", got)
	}
	// The short-circuited stage must count nothing.
	if got := s.Counter("tier.wire.datapath.packets"); got != 0 {
		t.Errorf("datapath.packets = %d, want 0", got)
	}
	if hv := s.Histograms["tier.wire.queue_delay_ns"]; hv.Count != 1 {
		t.Errorf("queue_delay count = %d, want 1", hv.Count)
	}
}

func TestProcessBatchMetricsMatchPerPacket(t *testing.T) {
	build := func() (*Pipeline, *obs.Registry) {
		a := &stubStage{name: "ingest"}
		b := &parityVerdictStage{name: "steer"}
		c := &stubStage{name: "datapath"}
		pl := NewPipeline(a, b, c)
		reg := obs.NewRegistry()
		pl.Instrument(reg, "p")
		return pl, reg
	}

	const n = 10
	mkCtxs := func() []*Context {
		out := make([]*Context, n)
		for i := range out {
			p := &packet.Packet{Size: uint16(i)}
			out[i] = &Context{}
			out[i].Reset(p)
		}
		return out
	}

	plA, regA := build()
	for _, c := range mkCtxs() {
		plA.Process(c)
	}
	plB, regB := build()
	plB.ProcessBatch(mkCtxs())

	sa, sb := regA.Snapshot(0), regB.Snapshot(0)
	for name, va := range sa.Counters {
		if vb := sb.Counter(name); vb != va {
			t.Errorf("%s: per-packet %d, batch %d", name, va, vb)
		}
	}
	if len(sa.Counters) != len(sb.Counters) {
		t.Errorf("counter sets differ: %d vs %d", len(sa.Counters), len(sb.Counters))
	}
}

// parityVerdictStage drops packets with even sizes — exercises mixed
// verdicts inside one batch.
type parityVerdictStage struct{ name string }

func (s *parityVerdictStage) Name() string { return s.name }
func (s *parityVerdictStage) Handle(ctx *Context) {
	if ctx.Pkt.Size%2 == 0 {
		ctx.Verdict = DropAtSwitch
	}
}

func TestUninstrumentedPipelineUnaffected(t *testing.T) {
	a := &stubStage{name: "only"}
	pl := NewPipeline(a)
	pl.Instrument(nil, "x") // nil registry must leave the pipeline bare
	var ctx Context
	p := packet.Packet{}
	ctx.Reset(&p)
	pl.Process(&ctx)
	pl.ObserveStage(0, &ctx) // must be a safe no-op
	if a.calls != 1 {
		t.Fatalf("calls = %d", a.calls)
	}
}

// BenchmarkPipelineDisabledMetrics measures Process with metrics off —
// the guard is one nil check per stage, no atomics, no allocations.
func BenchmarkPipelineDisabledMetrics(b *testing.B) {
	pl := NewPipeline(&stubStage{name: "a"}, &stubStage{name: "b"})
	var ctx Context
	p := packet.Packet{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Reset(&p)
		pl.Process(&ctx)
	}
}

func BenchmarkPipelineEnabledMetrics(b *testing.B) {
	pl := NewPipeline(&stubStage{name: "a"}, &stubStage{name: "b"})
	pl.Instrument(obs.NewRegistry(), "bench")
	var ctx Context
	p := packet.Packet{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Reset(&p)
		pl.Process(&ctx)
	}
}
