package tier

import (
	"testing"

	"smartwatch/internal/packet"
)

// batchStubStage is a stubStage that also records the vectors it received
// through ProcessBatch; its verdict applies to packets whose Ts is odd.
type batchStubStage struct {
	stubStage
	vectors [][]int64 // Ts values of each received vector
}

func (s *batchStubStage) Handle(ctx *Context) {
	s.calls++
	if s.verdict != Continue && ctx.Pkt.Ts%2 == 1 {
		ctx.Verdict = s.verdict
	}
}

func (s *batchStubStage) ProcessBatch(ctxs []*Context) {
	tss := make([]int64, len(ctxs))
	for i, c := range ctxs {
		tss[i] = c.Pkt.Ts
		s.calls++
		if s.verdict != Continue && c.Pkt.Ts%2 == 1 {
			c.Verdict = s.verdict
		}
	}
	s.vectors = append(s.vectors, tss)
}

func makeCtxs(n int) ([]*Context, []packet.Packet) {
	pkts := make([]packet.Packet, n)
	ctxs := make([]*Context, n)
	for i := range pkts {
		pkts[i] = packet.Packet{Ts: int64(i)}
		ctxs[i] = &Context{}
		ctxs[i].Reset(&pkts[i])
	}
	return ctxs, pkts
}

// TestProcessBatchFallbackShim: a pipeline of plain Stages must run each
// context through every stage, per packet, in order — existing stages
// work under ProcessBatch without implementing BatchStage.
func TestProcessBatchFallbackShim(t *testing.T) {
	a := &stubStage{name: "a"}
	b := &stubStage{name: "b"}
	pl := NewPipeline(a, b)
	ctxs, _ := makeCtxs(5)
	pl.ProcessBatch(ctxs)
	if a.calls != 5 || b.calls != 5 {
		t.Errorf("calls = %d/%d, want 5/5", a.calls, b.calls)
	}
	for i, c := range ctxs {
		if c.Verdict != Continue {
			t.Errorf("ctx %d verdict = %v", i, c.Verdict)
		}
	}
}

// TestProcessBatchVectorDelivery: a BatchStage receives the whole live
// vector in one call, in slice order.
func TestProcessBatchVectorDelivery(t *testing.T) {
	bs := &batchStubStage{stubStage: stubStage{name: "batch"}}
	pl := NewPipeline(bs)
	ctxs, _ := makeCtxs(4)
	pl.ProcessBatch(ctxs)
	if len(bs.vectors) != 1 {
		t.Fatalf("got %d vectors, want 1", len(bs.vectors))
	}
	for i, ts := range bs.vectors[0] {
		if ts != int64(i) {
			t.Errorf("vector[%d] = Ts %d, want %d (order broken)", i, ts, i)
		}
	}
}

// TestProcessBatchCompaction: packets a stage stops must not reach later
// stages, and survivors keep their relative order.
func TestProcessBatchCompaction(t *testing.T) {
	drop := &batchStubStage{stubStage: stubStage{name: "drop-odd", verdict: DropAtSwitch}}
	after := &batchStubStage{stubStage: stubStage{name: "after"}}
	pl := NewPipeline(drop, after)
	ctxs, _ := makeCtxs(6)
	pl.ProcessBatch(ctxs)

	if len(after.vectors) != 1 {
		t.Fatalf("downstream got %d vectors, want 1", len(after.vectors))
	}
	want := []int64{0, 2, 4}
	got := after.vectors[0]
	if len(got) != len(want) {
		t.Fatalf("downstream saw %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("downstream saw %v, want %v (compaction broke order)", got, want)
		}
	}
	for i, c := range ctxs {
		wantV := Continue
		if i%2 == 1 {
			wantV = DropAtSwitch
		}
		if c.Verdict != wantV {
			t.Errorf("ctx %d verdict = %v, want %v", i, c.Verdict, wantV)
		}
	}
}

// TestProcessBatchMatchesProcess: for stages with no cross-packet state,
// ProcessBatch over a vector must leave every context exactly as a
// Process loop would.
func TestProcessBatchMatchesProcess(t *testing.T) {
	build := func() *Pipeline {
		return NewPipeline(
			&stubStage{name: "a"},
			&batchStubStage{stubStage: stubStage{name: "drop-odd", verdict: ForwardDirect}},
			&stubStage{name: "c"},
		)
	}

	ref := build()
	refCtxs, _ := makeCtxs(9)
	for _, c := range refCtxs {
		ref.Process(c)
	}

	pl := build()
	ctxs, _ := makeCtxs(9)
	pl.ProcessBatch(ctxs)

	for i := range ctxs {
		if ctxs[i].Verdict != refCtxs[i].Verdict {
			t.Errorf("ctx %d: batch verdict %v, per-packet %v", i, ctxs[i].Verdict, refCtxs[i].Verdict)
		}
	}
}

// TestProcessBatchEmptyAndReuse: an empty vector is a no-op and the
// pipeline's scratch reuse must not leak contexts across calls.
func TestProcessBatchEmptyAndReuse(t *testing.T) {
	after := &batchStubStage{stubStage: stubStage{name: "after"}}
	pl := NewPipeline(&batchStubStage{stubStage: stubStage{name: "drop-odd", verdict: DropAtSwitch}}, after)

	pl.ProcessBatch(nil)
	if after.calls != 0 {
		t.Fatalf("empty batch reached a stage")
	}

	big, _ := makeCtxs(8)
	pl.ProcessBatch(big)
	small, _ := makeCtxs(2)
	pl.ProcessBatch(small)
	// 8-batch: 4 survivors; 2-batch: 1 survivor. No stale contexts replayed.
	if after.calls != 5 {
		t.Errorf("downstream calls = %d, want 5 (scratch leaked contexts?)", after.calls)
	}
}

// TestContextResetClearsFlowID: Reset must clear the batch-path flow-ID
// fields like every other per-packet field.
func TestContextResetClearsFlowID(t *testing.T) {
	p := packet.Packet{Size: 1}
	ctx := Context{}
	ctx.Reset(&p)
	ctx.Hash = 42
	ctx.Key = packet.FlowKey{LoPort: 1}
	ctx.HasFlowID = true
	ctx.Reset(&p)
	if ctx.Hash != 0 || ctx.HasFlowID || ctx.Key != (packet.FlowKey{}) {
		t.Errorf("Reset left flow-ID residue: %+v", ctx)
	}
}
