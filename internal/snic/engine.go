package snic

import (
	"smartwatch/internal/packet"
	"smartwatch/internal/stats"
)

// Cost is what processing one packet costs on the sNIC, reported by the
// application handler (FlowCache update + any in-line detectors).
type Cost struct {
	// Reads / Writes are abstract memory operations (the FlowCache's
	// Result counts map directly).
	Reads, Writes int
	// ExtraCycles is additional engine work (detector logic).
	ExtraCycles float64
	// Drop marks the packet as consumed without forwarding (e.g. blocked
	// by an IPS verdict); it is costed normally.
	Drop bool
}

// Ctx carries per-packet datapath observations into the handler.
type Ctx struct {
	// QueueDelayNs is the time the packet spent queued before a thread
	// picked it up — the "current timestamp minus MAC ingress timestamp"
	// the microburst detector thresholds on.
	QueueDelayNs float64
}

// Handler is the application logic the simulator charges for: it sees
// every dispatched packet in arrival order and returns its cost.
type Handler func(p *packet.Packet, ctx Ctx) Cost

// Config tunes the simulation.
type Config struct {
	// Profile is the hardware model.
	Profile Profile
	// QueueDropNs bounds per-packet queueing delay; packets that would
	// wait longer are dropped at the input buffer (loss under overload).
	QueueDropNs float64
	// LatencySamples caps the latency reservoir (default 1<<16).
	LatencySamples int
	// Observer, when set, is called after each processed packet with its
	// modelled completion latency — experiments use it to pair latency
	// with per-packet application outcomes (e.g. FlowCache hit vs miss).
	Observer func(p *packet.Packet, latencyNs float64)
}

// DefaultConfig returns a Netronome simulation with a 20 µs input buffer
// (~860 packets at line rate, a typical NIC RX ring depth).
func DefaultConfig() Config {
	return Config{Profile: Netronome(), QueueDropNs: 20e3}
}

// Report summarises one simulation run.
type Report struct {
	Processed, Dropped uint64
	// OfferedMpps / AchievedMpps are packet rates over the trace span.
	OfferedMpps, AchievedMpps float64
	// Latency is the per-packet latency distribution (ns), arrival to
	// completion, for processed packets.
	Latency *stats.Quantiles
	// EngineBusyNs is summed engine occupancy, for utilisation reporting.
	EngineBusyNs float64
	// SpanNs is the trace duration (last completion - first arrival).
	SpanNs float64
}

// Utilization returns mean engine utilisation across PMEs.
func (r Report) Utilization(p Profile) float64 {
	if r.SpanNs == 0 {
		return 0
	}
	return r.EngineBusyNs / (r.SpanNs * float64(p.PMEs))
}

// LossRate returns the dropped fraction.
func (r Report) LossRate() float64 {
	t := r.Processed + r.Dropped
	if t == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(t)
}

// threadSlot is one hardware thread in the scheduler: the time it next
// becomes free and the micro-engine it belongs to.
type threadSlot struct {
	freeNs float64
	pme    int
}

// threadHeap orders micro-engine threads by next-free time: the global
// load balancer always hands the packet to the earliest-available thread.
//
// It is a flat 4-ary min-heap specialised to threadSlot — the dispatch
// loop's only data structure, so it avoids container/heap's sort.Interface
// boxing and per-comparison dynamic dispatch. A 4-ary layout halves the
// tree depth of a binary heap (the hot loop only ever reorders the root
// after a dispatch) at the cost of three extra comparisons per level,
// which is a clear win when every comparison is an inlined float compare.
// Ties on freeNs break toward the lower PME index, making thread selection
// fully deterministic and independent of heap history.
type threadHeap []threadSlot

const threadHeapArity = 4

// less orders by next-free time, then PME index.
func (h threadHeap) less(i, j int) bool {
	if h[i].freeNs != h[j].freeNs {
		return h[i].freeNs < h[j].freeNs
	}
	return h[i].pme < h[j].pme
}

// siftDown restores the heap property below i after h[i] grew.
func (h threadHeap) siftDown(i int) {
	n := len(h)
	for {
		first := threadHeapArity*i + 1
		if first >= n {
			return
		}
		best := first
		end := first + threadHeapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h.less(c, best) {
				best = c
			}
		}
		if !h.less(best, i) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// init heapifies from the last parent down.
func (h threadHeap) init() {
	for i := (len(h) - 2) / threadHeapArity; i >= 0; i-- {
		h.siftDown(i)
	}
}

// Engine is the discrete-event sNIC simulator.
type Engine struct {
	cfg        Config
	handler    Handler
	threads    threadHeap
	engineFree []float64 // per-PME engine availability
	dispatch   float64   // scatter-gather front-end availability
}

// New builds a simulator; handler must not be nil.
func New(cfg Config, handler Handler) *Engine {
	if handler == nil {
		panic("snic: nil handler")
	}
	if cfg.Profile.PMEs < 1 || cfg.Profile.ThreadsPerPME < 1 {
		panic("snic: profile needs at least one PME thread")
	}
	if cfg.QueueDropNs <= 0 {
		cfg.QueueDropNs = 100e3
	}
	e := &Engine{cfg: cfg, handler: handler}
	e.engineFree = make([]float64, cfg.Profile.PMEs)
	e.threads = make(threadHeap, 0, cfg.Profile.PMEs*cfg.Profile.ThreadsPerPME)
	for pme := 0; pme < cfg.Profile.PMEs; pme++ {
		for t := 0; t < cfg.Profile.ThreadsPerPME; t++ {
			e.threads = append(e.threads, threadSlot{pme: pme})
		}
	}
	e.threads.init()
	return e
}

// Run replays the stream through the datapath and returns the report.
//
// The inner loop is the simulator's hot path: profile constants are
// hoisted out of the loop, the per-packet cycle model is pre-reduced to
// nanosecond coefficients (one multiply per cost term instead of a
// cycles->seconds division per packet), and the loop performs no
// allocations — the packet copy handed to the handler lives in a single
// stack slot reused across iterations.
func (e *Engine) Run(s packet.Stream) Report {
	prof := e.cfg.Profile
	rep := Report{Latency: stats.NewQuantiles(e.cfg.LatencySamples)}
	var firstTs, lastDone float64
	first := true

	// Hot-path constants, hoisted once per run.
	var (
		queueDropNs = e.cfg.QueueDropNs
		dispatchNs  = prof.DispatchNsPerPkt
		nsPerCycle  = 1e9 / prof.ClockHz
		baseNs      = prof.BaseCycles * nsPerCycle
		readCostNs  = prof.CyclesPerRead * nsPerCycle
		writeCostNs = prof.CyclesPerWrite * nsPerCycle
		readStallNs = prof.ReadNs
		observer    = e.cfg.Observer
		handler     = e.handler
		threads     = e.threads
		engineFree  = e.engineFree
		latency     = rep.Latency
		cur         packet.Packet
	)

	for p := range s {
		cur = p
		arrival := float64(cur.Ts)
		if first {
			firstTs, first = arrival, false
		}

		// Scatter-gather front end: fixed per-packet service.
		dispatchStart := arrival
		if e.dispatch > dispatchStart {
			dispatchStart = e.dispatch
		}
		if dispatchStart-arrival > queueDropNs {
			rep.Dropped++
			continue
		}
		e.dispatch = dispatchStart + dispatchNs
		ready := e.dispatch

		// Global load balancer: earliest-available thread.
		start := ready
		if threads[0].freeNs > start {
			start = threads[0].freeNs
		}
		if start-arrival > queueDropNs {
			// Input buffer overrun: the packet is lost before processing.
			rep.Dropped++
			continue
		}
		pme := threads[0].pme

		cost := handler(&cur, Ctx{QueueDelayNs: start - arrival})
		engineTime := baseNs +
			readCostNs*float64(cost.Reads) +
			writeCostNs*float64(cost.Writes) +
			cost.ExtraCycles*nsPerCycle

		engineStart := start
		if engineFree[pme] > engineStart {
			engineStart = engineFree[pme]
		}
		engineEnd := engineStart + engineTime
		engineFree[pme] = engineEnd
		// The packet's thread additionally waits out its DRAM reads
		// (yielding the engine to sibling threads meanwhile).
		threadEnd := engineEnd + float64(cost.Reads)*readStallNs

		threads[0].freeNs = threadEnd
		threads.siftDown(0)

		rep.Processed++
		rep.EngineBusyNs += engineTime
		latency.Add(threadEnd - arrival)
		if observer != nil {
			observer(&cur, threadEnd-arrival)
		}
		if threadEnd > lastDone {
			lastDone = threadEnd
		}
	}

	rep.SpanNs = lastDone - firstTs
	if rep.SpanNs > 0 {
		total := float64(rep.Processed + rep.Dropped)
		rep.OfferedMpps = total / rep.SpanNs * 1e3
		rep.AchievedMpps = float64(rep.Processed) / rep.SpanNs * 1e3
	}
	return rep
}
