package snic

import (
	"smartwatch/internal/container"
	"smartwatch/internal/packet"
	"smartwatch/internal/stats"
)

// Cost is what processing one packet costs on the sNIC, reported by the
// application handler (FlowCache update + any in-line detectors).
type Cost struct {
	// Reads / Writes are abstract memory operations (the FlowCache's
	// Result counts map directly).
	Reads, Writes int
	// ExtraCycles is additional engine work (detector logic).
	ExtraCycles float64
	// Drop marks the packet as consumed without forwarding (e.g. blocked
	// by an IPS verdict); it is costed normally.
	Drop bool
}

// Ctx carries per-packet datapath observations into the handler.
type Ctx struct {
	// QueueDelayNs is the time the packet spent queued before a thread
	// picked it up — the "current timestamp minus MAC ingress timestamp"
	// the microburst detector thresholds on.
	QueueDelayNs float64
}

// Handler is the application logic the simulator charges for: it sees
// every dispatched packet in arrival order and returns its cost.
type Handler func(p *packet.Packet, ctx Ctx) Cost

// Config tunes the simulation.
type Config struct {
	// Profile is the hardware model.
	Profile Profile
	// QueueDropNs bounds per-packet queueing delay; packets that would
	// wait longer are dropped at the input buffer (loss under overload).
	QueueDropNs float64
	// LatencySamples caps the latency reservoir (default 1<<16).
	LatencySamples int
	// Observer, when set, is called after each processed packet with its
	// modelled completion latency — experiments use it to pair latency
	// with per-packet application outcomes (e.g. FlowCache hit vs miss).
	Observer func(p *packet.Packet, latencyNs float64)
}

// DefaultConfig returns a Netronome simulation with a 20 µs input buffer
// (~860 packets at line rate, a typical NIC RX ring depth).
func DefaultConfig() Config {
	return Config{Profile: Netronome(), QueueDropNs: 20e3}
}

// Report summarises one simulation run.
type Report struct {
	Processed, Dropped uint64
	// OfferedMpps / AchievedMpps are packet rates over the trace span.
	OfferedMpps, AchievedMpps float64
	// Latency is the per-packet latency distribution (ns), arrival to
	// completion, for processed packets.
	Latency *stats.Quantiles
	// EngineBusyNs is summed engine occupancy, for utilisation reporting.
	EngineBusyNs float64
	// SpanNs is the trace duration (last completion - first arrival).
	SpanNs float64
}

// Utilization returns mean engine utilisation across PMEs.
func (r Report) Utilization(p Profile) float64 {
	if r.SpanNs == 0 {
		return 0
	}
	return r.EngineBusyNs / (r.SpanNs * float64(p.PMEs))
}

// LossRate returns the dropped fraction.
func (r Report) LossRate() float64 {
	t := r.Processed + r.Dropped
	if t == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(t)
}

// threadHeap orders micro-engine threads by next-free time (Pri), then PME
// index (Tie): the global load balancer always hands the packet to the
// earliest-available thread, with ties breaking toward the lower PME index
// so thread selection is fully deterministic and independent of heap
// history. container.Heap is the same flat 4-ary layout the dispatch loop
// always used; its cmp.Ordered keys keep every comparison an inlined float
// compare (no sort.Interface boxing, no dynamic dispatch).
type threadHeap = container.Heap[float64, int, struct{}]

// Engine is the discrete-event sNIC simulator.
type Engine struct {
	cfg        Config
	handler    Handler
	threads    threadHeap
	engineFree []float64 // per-PME engine availability
	dispatch   float64   // scatter-gather front-end availability
	// live points at the running Run's report so LiveCounts can surface
	// mid-run progress; valid only on the driving goroutine.
	live *Report
}

// New builds a simulator; handler must not be nil.
func New(cfg Config, handler Handler) *Engine {
	if handler == nil {
		panic("snic: nil handler")
	}
	if cfg.Profile.PMEs < 1 || cfg.Profile.ThreadsPerPME < 1 {
		panic("snic: profile needs at least one PME thread")
	}
	if cfg.QueueDropNs <= 0 {
		cfg.QueueDropNs = 100e3
	}
	e := &Engine{cfg: cfg, handler: handler}
	e.engineFree = make([]float64, cfg.Profile.PMEs)
	slots := make([]container.Item[float64, int, struct{}], 0, cfg.Profile.PMEs*cfg.Profile.ThreadsPerPME)
	for pme := 0; pme < cfg.Profile.PMEs; pme++ {
		for t := 0; t < cfg.Profile.ThreadsPerPME; t++ {
			slots = append(slots, container.Item[float64, int, struct{}]{Tie: pme})
		}
	}
	e.threads.Init(slots)
	return e
}

// Run replays the stream through the datapath and returns the report.
//
// The inner loop is the simulator's hot path: profile constants are
// hoisted out of the loop, the per-packet cycle model is pre-reduced to
// nanosecond coefficients (one multiply per cost term instead of a
// cycles->seconds division per packet), and the loop performs no
// allocations — the packet copy handed to the handler lives in a single
// stack slot reused across iterations.
func (e *Engine) Run(s packet.Stream) Report {
	prof := e.cfg.Profile
	rep := Report{Latency: stats.NewQuantiles(e.cfg.LatencySamples)}
	e.live = &rep
	var firstTs, lastDone float64
	first := true

	// Hot-path constants, hoisted once per run.
	var (
		queueDropNs = e.cfg.QueueDropNs
		dispatchNs  = prof.DispatchNsPerPkt
		nsPerCycle  = 1e9 / prof.ClockHz
		baseNs      = prof.BaseCycles * nsPerCycle
		readCostNs  = prof.CyclesPerRead * nsPerCycle
		writeCostNs = prof.CyclesPerWrite * nsPerCycle
		readStallNs = prof.ReadNs
		observer    = e.cfg.Observer
		handler     = e.handler
		threads     = &e.threads
		engineFree  = e.engineFree
		latency     = rep.Latency
		cur         packet.Packet
	)
	// The heap's root slot address is stable across FixRoot calls (no
	// Push/Pop happens in the loop), so it is resolved once.
	root := threads.Root()

	for p := range s {
		cur = p
		arrival := float64(cur.Ts)
		if first {
			firstTs, first = arrival, false
		}

		// Scatter-gather front end: fixed per-packet service.
		dispatchStart := arrival
		if e.dispatch > dispatchStart {
			dispatchStart = e.dispatch
		}
		if dispatchStart-arrival > queueDropNs {
			rep.Dropped++
			continue
		}
		e.dispatch = dispatchStart + dispatchNs
		ready := e.dispatch

		// Global load balancer: earliest-available thread.
		start := ready
		if root.Pri > start {
			start = root.Pri
		}
		if start-arrival > queueDropNs {
			// Input buffer overrun: the packet is lost before processing.
			rep.Dropped++
			continue
		}
		pme := root.Tie

		cost := handler(&cur, Ctx{QueueDelayNs: start - arrival})
		engineTime := baseNs +
			readCostNs*float64(cost.Reads) +
			writeCostNs*float64(cost.Writes) +
			cost.ExtraCycles*nsPerCycle

		engineStart := start
		if engineFree[pme] > engineStart {
			engineStart = engineFree[pme]
		}
		engineEnd := engineStart + engineTime
		engineFree[pme] = engineEnd
		// The packet's thread additionally waits out its DRAM reads
		// (yielding the engine to sibling threads meanwhile).
		threadEnd := engineEnd + float64(cost.Reads)*readStallNs

		root.Pri = threadEnd
		threads.FixRoot()

		rep.Processed++
		rep.EngineBusyNs += engineTime
		latency.Add(threadEnd - arrival)
		if observer != nil {
			observer(&cur, threadEnd-arrival)
		}
		if threadEnd > lastDone {
			lastDone = threadEnd
		}
	}

	rep.SpanNs = lastDone - firstTs
	if rep.SpanNs > 0 {
		total := float64(rep.Processed + rep.Dropped)
		rep.OfferedMpps = total / rep.SpanNs * 1e3
		rep.AchievedMpps = float64(rep.Processed) / rep.SpanNs * 1e3
	}
	return rep
}

// LiveCounts reports Run progress: packets processed so far, input-buffer
// drops, and accumulated engine busy time. During a Run it must be called
// from the driving goroutine (a handler or something it invokes
// synchronously, e.g. an interval metrics collector); after Run returns it
// reports the final totals. It returns zeros before the first Run.
func (e *Engine) LiveCounts() (processed, dropped uint64, engineBusyNs float64) {
	if e.live == nil {
		return 0, 0, 0
	}
	return e.live.Processed, e.live.Dropped, e.live.EngineBusyNs
}
