package snic

import "smartwatch/internal/packet"

// RetimeUniform re-times a stream to a fixed offered rate (packets/second
// of virtual time) with uniform inter-arrival gaps — the MoonGen-style
// constant-rate replay used by the paper's stress tests.
func RetimeUniform(s packet.Stream, pps float64) packet.Stream {
	if pps <= 0 {
		panic("snic: RetimeUniform needs a positive rate")
	}
	gap := 1e9 / pps
	return func(yield func(packet.Packet) bool) {
		i := 0
		for p := range s {
			p.Ts = int64(float64(i) * gap)
			i++
			if !yield(p) {
				return
			}
		}
	}
}

// CapacityProbe binary-searches the highest offered rate (in Mpps) the
// datapath sustains with loss below maxLoss. makeEngine must return a
// fresh engine (and fresh application state) per probe; trace returns the
// workload re-timed to the probed rate.
func CapacityProbe(makeEngine func() *Engine, trace func(pps float64) packet.Stream, loMpps, hiMpps, maxLoss float64) float64 {
	lossAt := func(mpps float64) float64 {
		rep := makeEngine().Run(trace(mpps * 1e6))
		return rep.LossRate()
	}
	if lossAt(loMpps) > maxLoss {
		return loMpps
	}
	if lossAt(hiMpps) <= maxLoss {
		return hiMpps
	}
	for hiMpps-loMpps > 0.5 {
		mid := (loMpps + hiMpps) / 2
		if lossAt(mid) <= maxLoss {
			loMpps = mid
		} else {
			hiMpps = mid
		}
	}
	return loMpps
}
