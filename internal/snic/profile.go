// Package snic is a discrete-event simulator of a SmartNIC datapath in the
// style the SmartWatch paper itself uses for its §4.1 generality study: a
// trace-driven cycle model parameterised by each NIC's clock rate, core
// count and memory-access latencies (Table 3). Packets are dispatched by a
// global load balancer to micro-engine threads that run to completion;
// reads yield the calling thread (other threads keep the engine busy)
// while writes stall the engine — the asymmetry behind the FlowCache's
// read-heavy/write-once bucket design.
//
// All time is virtual nanoseconds; results are deterministic and
// machine-independent. testing.B benchmarks measure the simulator's own
// speed, while the Report carries the modelled Mpps/latency figures the
// paper plots.
package snic

// Profile is one SmartNIC hardware model. The cycle constants are
// calibrated so the simulated FlowCache reproduces the paper's measured
// operating points (General mode lossless to ~30 Mpps, Lite to the 43 Mpps
// 64 B line rate on the Netronome; 40.7 / 42.2 Mpps predicted for
// BlueField / LiquidIO in Table 3).
type Profile struct {
	// Name identifies the NIC.
	Name string
	// ClockHz is the micro-engine clock.
	ClockHz float64
	// PMEs is the number of micro-engines available for packet processing;
	// CMEs are reserved for custom/background processing (mode switching,
	// KS tests, microburst scans).
	PMEs, CMEs int
	// ThreadsPerPME is the hardware thread count per engine (4 on the
	// NFP-6000: a read yields to the next thread).
	ThreadsPerPME int
	// ReadNs is the DRAM read latency a packet's thread waits out (engine
	// stays busy with other threads).
	ReadNs float64
	// BaseCycles / CyclesPerRead / CyclesPerWrite are engine-occupancy
	// costs per packet: fixed parse+match-action work, per-bucket probe
	// issue+compare cost, and write cost including the non-yielding stall.
	BaseCycles, CyclesPerRead, CyclesPerWrite float64
	// DispatchNsPerPkt models the packet scatter-gather front end that
	// caps the Netronome at 43 Mpps for 64 B packets even with no
	// processing (§2.3.2).
	DispatchNsPerPkt float64
	// DRAMBytes is the memory available for the FlowCache.
	DRAMBytes int64
}

// Netronome returns the Agilio LX profile the paper's testbed uses:
// 96 flow-processing cores of which 80 are usable as MEs (the paper
// reserves 3 of those as CMEs), 1.2 GHz, 8 GB DRAM.
func Netronome() Profile {
	return Profile{
		Name: "netronome-agilio-lx", ClockHz: 1.2e9,
		PMEs: 77, CMEs: 3, ThreadsPerPME: 4,
		ReadNs:     137,
		BaseCycles: 1200, CyclesPerRead: 120, CyclesPerWrite: 350,
		DispatchNsPerPkt: 23.2, // 1/43 Mpps
		DRAMBytes:        8 << 30,
	}
}

// BlueField returns the NVIDIA/Mellanox BlueField MBF1L516A profile:
// 16 ARM A72 cores at 2.5 GHz with large caches, so per-operation costs
// are lower but parallelism is narrower (Table 3).
func BlueField() Profile {
	return Profile{
		Name: "bluefield-mbf1l516a", ClockHz: 2.5e9,
		PMEs: 16, CMEs: 0, ThreadsPerPME: 4,
		ReadNs:     132,
		BaseCycles: 750, CyclesPerRead: 60, CyclesPerWrite: 120,
		DispatchNsPerPkt: 23.2,
		DRAMBytes:        16 << 30,
	}
}

// LiquidIO returns the Marvell LiquidIO III / OCTEON TX2 profile:
// 36 cores at 2.2 GHz, 24 MB L2 (Table 3).
func LiquidIO() Profile {
	return Profile{
		Name: "liquidio-octeon-tx2", ClockHz: 2.2e9,
		PMEs: 36, CMEs: 0, ThreadsPerPME: 4,
		ReadNs:     115,
		BaseCycles: 1440, CyclesPerRead: 120, CyclesPerWrite: 220,
		DispatchNsPerPkt: 23.2,
		DRAMBytes:        16 << 30,
	}
}

// WithPMEs returns a copy of the profile with the packet-engine count
// overridden (the Fig. 6b PME sweep).
func (p Profile) WithPMEs(n int) Profile {
	p.PMEs = n
	return p
}
