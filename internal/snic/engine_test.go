package snic

import (
	"testing"

	"smartwatch/internal/flowcache"
	"smartwatch/internal/packet"
	"smartwatch/internal/stats"
)

// constHandler charges a fixed cost.
func constHandler(reads, writes int) Handler {
	return func(*packet.Packet, Ctx) Cost { return Cost{Reads: reads, Writes: writes} }
}

// synthetic returns n 64 B packets: 70% from a Zipf flow population (the
// elephants and warm mice), 30% from ever-new one-packet flows — the churn
// that dominates backbone traces and keeps the FlowCache miss rate
// realistic in steady state.
func synthetic(n, flows int, seed uint64) packet.Stream {
	return func(yield func(packet.Packet) bool) {
		rng := stats.NewRand(seed)
		z := stats.NewZipf(rng, flows, 1.2)
		churn := 1 << 24
		for i := 0; i < n; i++ {
			var f int
			if rng.Float64() < 0.3 {
				churn++
				f = churn
			} else {
				f = z.Sample()
			}
			p := packet.Packet{
				Ts: int64(i), // re-timed by RetimeUniform
				Tuple: packet.FiveTuple{
					SrcIP: packet.Addr(f*2654435761 + 99), DstIP: packet.Addr(f + 13),
					SrcPort: uint16(f), DstPort: 443, Proto: packet.ProtoTCP,
				},
				Size: 64,
			}
			if !yield(p) {
				return
			}
		}
	}
}

// cacheHandler wires a FlowCache into the simulator.
func cacheHandler(c *flowcache.Cache) Handler {
	return func(p *packet.Packet, _ Ctx) Cost {
		_, res := c.Process(p)
		return Cost{Reads: res.Reads, Writes: res.Writes}
	}
}

// steadyCache returns a cache whose capacity is below the flow-population
// size, emulating the saturated steady state of a long CAIDA replay.
func steadyCache(mode flowcache.Mode) *flowcache.Cache {
	cfg := flowcache.DefaultConfig(12) // 4096 rows x 12 = 49k entries
	cfg.RingEntries = 1 << 20
	c := flowcache.New(cfg)
	c.SetMode(mode)
	return c
}

const steadyFlows = 100_000

func TestDispatchCapsLineRate(t *testing.T) {
	// Zero-cost handler: throughput must cap at the scatter-gather limit
	// (~43 Mpps), the paper's observation for 64 B packets.
	cap := CapacityProbe(
		func() *Engine {
			return New(DefaultConfig(), constHandler(0, 0))
		},
		func(pps float64) packet.Stream { return RetimeUniform(synthetic(60_000, 1000, 1), pps) },
		10, 80, 0.001,
	)
	if cap < 41 || cap > 46 {
		t.Errorf("dispatch-capped capacity = %.1f Mpps, want ~43", cap)
	}
}

func TestGeneralModeCapacity(t *testing.T) {
	// General (4,8) on a saturated table: lossless band ends in the
	// high-20s/low-30s Mpps (paper: 30 Mpps).
	cap := CapacityProbe(
		func() *Engine {
			return New(DefaultConfig(), cacheHandler(steadyCache(flowcache.General)))
		},
		func(pps float64) packet.Stream {
			return RetimeUniform(synthetic(150_000, steadyFlows, 2), pps)
		},
		10, 60, 0.001,
	)
	if cap < 24 || cap > 38 {
		t.Errorf("General capacity = %.1f Mpps, want ~30", cap)
	}
}

func TestLiteModeCapacity(t *testing.T) {
	// Lite (2,0) must reach the 43 Mpps line rate.
	cap := CapacityProbe(
		func() *Engine {
			return New(DefaultConfig(), cacheHandler(steadyCache(flowcache.Lite)))
		},
		func(pps float64) packet.Stream {
			return RetimeUniform(synthetic(150_000, steadyFlows, 3), pps)
		},
		10, 60, 0.001,
	)
	if cap < 39 {
		t.Errorf("Lite capacity = %.1f Mpps, want ~43", cap)
	}
	// And Lite must out-throughput General.
	gen := CapacityProbe(
		func() *Engine {
			return New(DefaultConfig(), cacheHandler(steadyCache(flowcache.General)))
		},
		func(pps float64) packet.Stream {
			return RetimeUniform(synthetic(150_000, steadyFlows, 3), pps)
		},
		10, 60, 0.001,
	)
	if cap <= gen {
		t.Errorf("Lite (%.1f) must exceed General (%.1f)", cap, gen)
	}
}

func TestTable3CrossNICPredictions(t *testing.T) {
	// §4.1: same workload, per-NIC profiles; the predicted ordering is
	// Netronome (43) > LiquidIO (42.2) > BlueField (40.7), all close.
	run := func(p Profile) float64 {
		return CapacityProbe(
			func() *Engine {
				cfg := DefaultConfig()
				cfg.Profile = p
				return New(cfg, cacheHandler(steadyCache(flowcache.Lite)))
			},
			func(pps float64) packet.Stream {
				return RetimeUniform(synthetic(120_000, steadyFlows, 4), pps)
			},
			10, 60, 0.001,
		)
	}
	nfp := run(Netronome())
	bf := run(BlueField())
	lio := run(LiquidIO())
	t.Logf("Table 3: netronome=%.1f bluefield=%.1f liquidio=%.1f", nfp, bf, lio)
	if !(nfp >= lio && lio >= bf-1) {
		t.Errorf("ordering violated: nfp=%.1f lio=%.1f bf=%.1f", nfp, lio, bf)
	}
	for name, v := range map[string]float64{"netronome": nfp, "bluefield": bf, "liquidio": lio} {
		if v < 36 || v > 46 {
			t.Errorf("%s capacity %.1f outside Table 3 band [38,44]", name, v)
		}
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	mk := func() *Engine { return New(DefaultConfig(), cacheHandler(steadyCache(flowcache.General))) }
	low := mk().Run(RetimeUniform(synthetic(50_000, steadyFlows, 5), 5e6))
	high := mk().Run(RetimeUniform(synthetic(50_000, steadyFlows, 5), 28e6))
	if low.Latency.Quantile(0.5) >= high.Latency.Quantile(0.99) {
		t.Errorf("latency should grow with load: p50@5M=%.0f p99@28M=%.0f",
			low.Latency.Quantile(0.5), high.Latency.Quantile(0.99))
	}
	// Paper Fig. 5b: latencies are single-digit microseconds at load.
	if p50 := high.Latency.Quantile(0.5); p50 < 500 || p50 > 20_000 {
		t.Errorf("p50 latency %.0f ns implausible", p50)
	}
}

func TestOverloadDropsNotHangs(t *testing.T) {
	e := New(DefaultConfig(), constHandler(24, 4))
	rep := e.Run(RetimeUniform(synthetic(80_000, 1000, 6), 60e6))
	if rep.Dropped == 0 {
		t.Error("60 Mpps must overload the datapath")
	}
	if rep.Processed == 0 {
		t.Error("some packets must still be processed")
	}
	if rep.LossRate() <= 0 || rep.LossRate() >= 1 {
		t.Errorf("loss rate = %f", rep.LossRate())
	}
}

func TestFewerPMEsLowerThroughput(t *testing.T) {
	run := func(pmes int) float64 {
		cfg := DefaultConfig()
		cfg.Profile = cfg.Profile.WithPMEs(pmes)
		rep := New(cfg, constHandler(8, 2)).Run(RetimeUniform(synthetic(60_000, 1000, 7), 43e6))
		return rep.AchievedMpps
	}
	if run(20) >= run(77) {
		t.Error("20 PMEs should not outperform 77")
	}
}

func TestReportAccounting(t *testing.T) {
	e := New(DefaultConfig(), constHandler(1, 1))
	rep := e.Run(RetimeUniform(synthetic(10_000, 100, 8), 1e6))
	if rep.Processed != 10_000 || rep.Dropped != 0 {
		t.Errorf("processed=%d dropped=%d", rep.Processed, rep.Dropped)
	}
	if rep.AchievedMpps < 0.9 || rep.AchievedMpps > 1.1 {
		t.Errorf("achieved = %.2f Mpps, want ~1", rep.AchievedMpps)
	}
	if u := rep.Utilization(e.cfg.Profile); u <= 0 || u >= 1 {
		t.Errorf("utilization = %f", u)
	}
}

func TestEngineValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil handler must panic")
		}
	}()
	New(DefaultConfig(), nil)
}

func BenchmarkSimulatedPacket(b *testing.B) {
	c := steadyCache(flowcache.General)
	e := New(DefaultConfig(), cacheHandler(c))
	pkts := packet.Collect(RetimeUniform(synthetic(b.N, 10_000, 9), 30e6))
	b.ResetTimer()
	e.Run(packet.StreamOf(pkts))
}
