package p4switch

import (
	"testing"

	"smartwatch/internal/packet"
)

func synPkt(src, dst string, dport uint16) packet.Packet {
	return packet.Packet{
		Tuple: packet.FiveTuple{
			SrcIP: packet.MustParseAddr(src), DstIP: packet.MustParseAddr(dst),
			SrcPort: 40000, DstPort: dport, Proto: packet.ProtoTCP,
		},
		Size: 64, Flags: packet.FlagSYN,
	}
}

func sshQuery() Query {
	return Query{
		Name:   "ssh-conns",
		Filter: Predicate{Proto: packet.ProtoTCP, DstPort: 22},
		Key:    KeyDstIP, PrefixBits: 16,
		Reduce: CountSYN, Threshold: 5, Slots: 1 << 12,
	}
}

func TestPredicate(t *testing.T) {
	p := synPkt("1.2.3.4", "10.0.0.1", 22)
	cases := []struct {
		pr   Predicate
		want bool
	}{
		{Predicate{}, true},
		{Predicate{Proto: packet.ProtoTCP}, true},
		{Predicate{Proto: packet.ProtoUDP}, false},
		{Predicate{DstPort: 22}, true},
		{Predicate{DstPort: 80}, false},
		{Predicate{FlagsSet: packet.FlagSYN}, true},
		{Predicate{FlagsSet: packet.FlagACK}, false},
		{Predicate{FlagsClear: packet.FlagSYN}, false},
		{Predicate{MinSize: 65}, false},
		{Predicate{MinSize: 64}, true},
	}
	for i, c := range cases {
		if got := c.pr.Match(&p); got != c.want {
			t.Errorf("case %d: match = %v, want %v", i, got, c.want)
		}
	}
}

func TestQueryFiresAboveThreshold(t *testing.T) {
	sw := New(DefaultConfig())
	q := sshQuery()
	if err := sw.InstallQueries([]Query{q}); err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(sw.Queries(), 0)
	// 6 SSH SYNs to one /16, 2 to another.
	for i := 0; i < 6; i++ {
		p := synPkt("1.2.3.4", "10.1.0.9", 22)
		p.Tuple.SrcPort = uint16(1000 + i)
		sw.Process(&p)
		tr.Observe(&p)
	}
	for i := 0; i < 2; i++ {
		p := synPkt("1.2.3.4", "10.99.0.9", 22)
		sw.Process(&p)
		tr.Observe(&p)
	}
	fired := sw.EndInterval(tr.Candidates())
	if len(fired) != 1 {
		t.Fatalf("fired = %+v, want exactly the 10.1/16 subset", fired)
	}
	if fired[0].Key != packet.MustParseAddr("10.1.0.0") || fired[0].Value != 6 {
		t.Errorf("fired = %+v", fired[0])
	}
	// Registers reset across intervals.
	if again := sw.EndInterval(map[string][]packet.Addr{"ssh-conns": {packet.MustParseAddr("10.1.0.0")}}); len(again) != 0 {
		t.Errorf("registers not cleared: %+v", again)
	}
}

func TestSteeringDirectsSubsetToSNIC(t *testing.T) {
	sw := New(DefaultConfig())
	if err := sw.InstallQueries([]Query{sshQuery()}); err != nil {
		t.Fatal(err)
	}
	fk := FiredKey{Query: "ssh-conns", Key: packet.MustParseAddr("10.1.0.0"), PrefixBits: 16}
	if err := sw.Steer(fk); err != nil {
		t.Fatal(err)
	}
	in := synPkt("9.9.9.9", "10.1.44.3", 22)
	if got := sw.Process(&in); got != ToSNIC {
		t.Errorf("in-subset SSH packet: %v, want to-snic", got)
	}
	other := synPkt("9.9.9.9", "10.2.44.3", 22)
	if got := sw.Process(&other); got != Forward {
		t.Errorf("out-of-subset packet: %v, want forward", got)
	}
	web := synPkt("9.9.9.9", "10.1.44.3", 80)
	if got := sw.Process(&web); got != Forward {
		t.Errorf("non-matching filter: %v, want forward", got)
	}
	sw.Unsteer("ssh-conns", fk.Key)
	if got := sw.Process(&in); got != Forward {
		t.Errorf("after unsteer: %v", got)
	}
}

func TestWhitelistBypassesSteering(t *testing.T) {
	sw := New(DefaultConfig())
	if err := sw.InstallQueries([]Query{sshQuery()}); err != nil {
		t.Fatal(err)
	}
	_ = sw.Steer(FiredKey{Query: "ssh-conns", Key: packet.MustParseAddr("10.1.0.0"), PrefixBits: 16})
	p := synPkt("8.8.8.8", "10.1.0.1", 22)
	if sw.Process(&p) != ToSNIC {
		t.Fatal("precondition: packet should steer")
	}
	if err := sw.Whitelist(p.Key()); err != nil {
		t.Fatal(err)
	}
	if got := sw.Process(&p); got != Forward {
		t.Errorf("whitelisted flow: %v, want forward", got)
	}
	if sw.Stats().WhitelistHits != 1 {
		t.Errorf("whitelist hits = %d", sw.Stats().WhitelistHits)
	}
}

func TestBlacklistDrops(t *testing.T) {
	sw := New(DefaultConfig())
	attacker := packet.MustParseAddr("6.6.6.6")
	sw.Blacklist(attacker)
	p := synPkt("6.6.6.6", "10.0.0.1", 22)
	if got := sw.Process(&p); got != Drop {
		t.Errorf("blacklisted source: %v, want drop", got)
	}
	if !sw.Blacklisted(attacker) {
		t.Error("Blacklisted() false")
	}
}

func TestSRAMAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SRAMBytes = 64 << 10
	sw := New(cfg)
	q := sshQuery()
	q.Slots = 1 << 10 // 8 KB
	if err := sw.InstallQueries([]Query{q}); err != nil {
		t.Fatal(err)
	}
	used := sw.SRAMBytesUsed()
	if used != 1<<13 {
		t.Errorf("SRAM used = %d, want 8192", used)
	}
	if occ := sw.Occupancy(); occ < 0.12 || occ > 0.13 {
		t.Errorf("occupancy = %f", occ)
	}
	// A query set that exceeds SRAM must be rejected.
	big := q
	big.Slots = 1 << 14 // 128 KB > 64 KB
	if err := sw.InstallQueries([]Query{big}); err == nil {
		t.Error("oversized query accepted")
	}
}

func TestStageBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stages = 8 // fixed 4 + 2 per query => at most 2 queries
	sw := New(cfg)
	mk := func(name string) Query {
		q := sshQuery()
		q.Name = name
		return q
	}
	if err := sw.InstallQueries([]Query{mk("a"), mk("b")}); err != nil {
		t.Fatalf("2 queries should fit: %v", err)
	}
	if err := sw.InstallQueries([]Query{mk("a"), mk("b"), mk("c")}); err == nil {
		t.Error("3 queries must exceed 8 stages")
	}
}

func TestQueryValidation(t *testing.T) {
	sw := New(DefaultConfig())
	bad := []Query{
		{},
		{Name: "x", PrefixBits: 0, Slots: 1, Threshold: 1},
		{Name: "x", PrefixBits: 16, Slots: 0, Threshold: 1},
		{Name: "x", PrefixBits: 16, Slots: 1, Threshold: 0},
	}
	for i, q := range bad {
		if err := sw.InstallQueries([]Query{q}); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestWhitelistCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxWhitelist = 2
	sw := New(cfg)
	for i := 0; i < 2; i++ {
		k := packet.FiveTuple{SrcIP: packet.Addr(i + 1), DstIP: 9, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}.Canonical()
		if err := sw.Whitelist(k); err != nil {
			t.Fatal(err)
		}
	}
	k := packet.FiveTuple{SrcIP: 77, DstIP: 9, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}.Canonical()
	if err := sw.Whitelist(k); err == nil {
		t.Error("whitelist overflow accepted")
	}
}

func TestReduceKinds(t *testing.T) {
	p := synPkt("1.1.1.1", "2.2.2.2", 22)
	rst := p
	rst.Flags = packet.FlagRST
	data := p
	data.Flags = packet.FlagACK
	cases := []struct {
		r    Reduce
		pkt  *packet.Packet
		want uint64
	}{
		{CountPackets, &p, 1},
		{CountSYN, &p, 1},
		{CountSYN, &data, 0},
		{CountRST, &rst, 1},
		{CountRST, &p, 0},
		{SumBytes, &p, 64},
	}
	for i, c := range cases {
		q := Query{Reduce: c.r}
		if got := q.amount(c.pkt); got != c.want {
			t.Errorf("case %d (%v): amount = %d, want %d", i, c.r, got, c.want)
		}
	}
}

func TestRefinerZoomsAndDetects(t *testing.T) {
	base := sshQuery()
	r := NewRefiner(base, []int{8, 16, 32})
	if r.Level() != 8 {
		t.Fatalf("start level = %d", r.Level())
	}
	// Interval 1: /8 fires for 10.0.0.0.
	out := r.Advance([]FiredKey{{Query: base.Name, Key: packet.MustParseAddr("10.0.0.0"), PrefixBits: 8, Value: 100}})
	if out != nil || r.Level() != 16 {
		t.Fatalf("after level 8: out=%v level=%d", out, r.Level())
	}
	// Interval 2: /16 fires inside and outside the zoomed window.
	out = r.Advance([]FiredKey{
		{Query: base.Name, Key: packet.MustParseAddr("10.1.0.0"), PrefixBits: 16, Value: 80},
		{Query: base.Name, Key: packet.MustParseAddr("11.1.0.0"), PrefixBits: 16, Value: 90}, // outside
	})
	if out != nil || r.Level() != 32 {
		t.Fatalf("after level 16: out=%v level=%d", out, r.Level())
	}
	// Interval 3: /32 detection inside the window.
	out = r.Advance([]FiredKey{
		{Query: base.Name, Key: packet.MustParseAddr("10.1.2.3"), PrefixBits: 32, Value: 60},
		{Query: base.Name, Key: packet.MustParseAddr("10.9.2.3"), PrefixBits: 32, Value: 70}, // parent not fired
	})
	if len(out) != 1 || out[0].Key != packet.MustParseAddr("10.1.2.3") {
		t.Fatalf("detections = %+v", out)
	}
	if r.Level() != 8 {
		t.Errorf("refiner must restart, level = %d", r.Level())
	}
}

func TestRefinerRestartsWhenNothingFires(t *testing.T) {
	r := NewRefiner(sshQuery(), []int{8, 16})
	r.Advance([]FiredKey{{Query: "ssh-conns", Key: 0, PrefixBits: 8, Value: 10}})
	if out := r.Advance(nil); out != nil || r.Level() != 8 {
		t.Errorf("empty interval must restart: level=%d", r.Level())
	}
}

func TestTrackerBounded(t *testing.T) {
	q := sshQuery()
	tr := NewTracker([]Query{q}, 3)
	for i := 0; i < 10; i++ {
		p := synPkt("1.1.1.1", "10.0.0.1", 22)
		p.Tuple.DstIP = packet.Addr(uint32(i) << 16) // distinct /16s
		tr.Observe(&p)
	}
	c := tr.Candidates()
	if len(c[q.Name]) != 3 {
		t.Errorf("tracker kept %d keys, want 3 (bounded)", len(c[q.Name]))
	}
	// Reset after Candidates.
	if len(tr.Candidates()[q.Name]) != 0 {
		t.Error("tracker not reset")
	}
}
