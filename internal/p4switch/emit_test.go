package p4switch

import (
	"strings"
	"testing"

	"smartwatch/internal/packet"
)

func TestEmitP4StructureAndSemantics(t *testing.T) {
	sw := New(DefaultConfig())
	queries := []Query{
		sshQuery(),
		{
			Name:   "dns-bytes",
			Filter: Predicate{Proto: packet.ProtoUDP, ServicePort: 53},
			Key:    KeySrcIP, PrefixBits: 8,
			Reduce: SumBytes, Threshold: 1 << 20, Slots: 1 << 10,
		},
	}
	if err := sw.InstallQueries(queries); err != nil {
		t.Fatal(err)
	}
	src := sw.EmitP4("smartwatch_test")

	// Structural landmarks of a v1model program.
	for _, want := range []string{
		"#include <v1model.p4>",
		"parser SWParser",
		"control SWIngress",
		"V1Switch(",
		"register<bit<64>>(4096) reg_q0;", // ssh query slots
		"register<bit<64>>(1024) reg_q1;", // dns query slots
		"table blacklist",
		"table whitelist",
		"table steer_q0",
		"table steer_q1",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated P4 missing %q", want)
		}
	}
	// Query semantics: SSH filter on dst port 22 with a /16 mask; DNS
	// service port matches either direction and sums bytes.
	for _, want := range []string{
		"hdr.l4.dstPort == 22",
		"32w0xffff0000",
		"(hdr.l4.dstPort == 53 || hdr.l4.srcPort == 53)",
		"(bit<64>)hdr.ipv4.totalLen",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated P4 missing semantic %q", want)
		}
	}
	// Balanced braces: a cheap well-formedness check.
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Errorf("unbalanced braces: %d vs %d", strings.Count(src, "{"), strings.Count(src, "}"))
	}
}

func TestPrefixMaskLiteral(t *testing.T) {
	cases := []struct {
		bits int
		want string
	}{
		{0, "32w0x00000000"}, {8, "32w0xff000000"}, {16, "32w0xffff0000"},
		{24, "32w0xffffff00"}, {32, "32w0xffffffff"}, {40, "32w0xffffffff"},
	}
	for _, c := range cases {
		if got := prefixMaskLiteral(c.bits); got != c.want {
			t.Errorf("mask(%d) = %s, want %s", c.bits, got, c.want)
		}
	}
}

func TestControlPlaneEntries(t *testing.T) {
	sw := New(DefaultConfig())
	if err := sw.InstallQueries([]Query{sshQuery()}); err != nil {
		t.Fatal(err)
	}
	sw.Blacklist(packet.MustParseAddr("6.6.6.6"))
	k := packet.FiveTuple{
		SrcIP: packet.MustParseAddr("1.2.3.4"), DstIP: packet.MustParseAddr("10.0.0.1"),
		SrcPort: 1000, DstPort: 22, Proto: packet.ProtoTCP,
	}.Canonical()
	if err := sw.Whitelist(k); err != nil {
		t.Fatal(err)
	}
	if err := sw.Steer(FiredKey{Query: "ssh-conns", Key: packet.MustParseAddr("10.1.0.0"), PrefixBits: 16}); err != nil {
		t.Fatal(err)
	}
	entries := sw.ControlPlaneEntries()
	if len(entries) != 3 {
		t.Fatalf("entries = %v", entries)
	}
	joined := strings.Join(entries, "\n")
	for _, want := range []string{
		"table_add blacklist drop_ 6.6.6.6 =>",
		"table_add steer_q0 steer_to_snic 10.1.0.0/16 =>",
		"table_add whitelist allow",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("entries missing %q in:\n%s", want, joined)
		}
	}
}
