// Package p4switch simulates the programmable-switch tier of SmartWatch: a
// Tofino-style match-action pipeline running Sonata-style aggregate
// queries in register arrays, with exact-match whitelist/blacklist tables,
// prefix-based steering of suspicious traffic subsets to the sNIC, and
// SRAM/stage accounting (the resource axis of Figs. 2 and 9).
//
// The model captures exactly what the paper uses the switch for: coarse
// per-prefix aggregation in hash-indexed registers (collisions and all),
// threshold checks at interval boundaries, and the resulting
// steer/whitelist control loop. Per-packet work is a constant small number
// of register operations, reflecting the hardware's line-rate constraint.
package p4switch

import (
	"fmt"

	"smartwatch/internal/packet"
)

// KeyField selects what a query aggregates over.
type KeyField uint8

// Key fields available to switch queries.
const (
	// KeyDstIP keys on the destination address (at the query's prefix
	// granularity) — "SSH connections per destination prefix".
	KeyDstIP KeyField = iota
	// KeySrcIP keys on the source address — "probes per remote host".
	KeySrcIP
)

// String names the field.
func (k KeyField) String() string {
	if k == KeySrcIP {
		return "srcIP"
	}
	return "dstIP"
}

// Reduce selects a query's aggregation function. All are single-register
// updates, the only kind a line-rate pipeline affords (§2.2.1).
type Reduce uint8

// Aggregations.
const (
	// CountPackets counts matching packets.
	CountPackets Reduce = iota
	// CountSYN counts TCP connection attempts (SYN without ACK).
	CountSYN
	// CountRST counts TCP resets.
	CountRST
	// SumBytes accumulates matching bytes.
	SumBytes
)

// String names the aggregation.
func (r Reduce) String() string {
	switch r {
	case CountSYN:
		return "count-syn"
	case CountRST:
		return "count-rst"
	case SumBytes:
		return "sum-bytes"
	default:
		return "count-packets"
	}
}

// Predicate is a declarative packet filter, the match part of a
// match-action entry. Zero-valued fields match everything.
type Predicate struct {
	// Proto restricts the IP protocol (0 = any).
	Proto packet.Proto
	// DstPort restricts the destination port (0 = any).
	DstPort uint16
	// ServicePort matches packets whose source OR destination port equals
	// it — steering rules use this so both directions of a service's
	// sessions reach the sNIC.
	ServicePort uint16
	// FlagsSet requires these TCP flags set.
	FlagsSet packet.TCPFlags
	// FlagsClear requires these TCP flags clear.
	FlagsClear packet.TCPFlags
	// MinSize matches packets of at least this wire length.
	MinSize uint16
}

// Match evaluates the predicate.
func (pr Predicate) Match(p *packet.Packet) bool {
	if pr.Proto != 0 && p.Tuple.Proto != pr.Proto {
		return false
	}
	if pr.DstPort != 0 && p.Tuple.DstPort != pr.DstPort {
		return false
	}
	if pr.ServicePort != 0 && p.Tuple.DstPort != pr.ServicePort && p.Tuple.SrcPort != pr.ServicePort {
		return false
	}
	if pr.FlagsSet != 0 && !p.Flags.Has(pr.FlagsSet) {
		return false
	}
	if pr.FlagsClear != 0 && p.Flags&pr.FlagsClear != 0 {
		return false
	}
	if pr.MinSize != 0 && p.Size < pr.MinSize {
		return false
	}
	return true
}

// Query is one aggregate-traffic query (the Sonata interface the paper
// reuses to load switch queries).
type Query struct {
	// Name identifies the query in reports and steering rules.
	Name string
	// Filter selects the packets the query sees.
	Filter Predicate
	// Key is the aggregation key field.
	Key KeyField
	// PrefixBits is the key granularity (8/16/24/32); coarser prefixes
	// use less state but steer more traffic when they fire — the
	// iterative-refinement trade-off of §3.1.
	PrefixBits int
	// Reduce is the aggregation function.
	Reduce Reduce
	// Threshold fires the query for keys whose aggregate crosses it
	// within one monitoring interval.
	Threshold uint64
	// Slots is the register-array size; distinct keys hash into slots, so
	// undersized arrays alias (coarse-grained error, like the hardware).
	Slots int
}

func (q Query) validate() error {
	if q.Name == "" {
		return fmt.Errorf("p4switch: query needs a name")
	}
	if q.PrefixBits < 1 || q.PrefixBits > 32 {
		return fmt.Errorf("p4switch: query %q prefix bits %d out of range", q.Name, q.PrefixBits)
	}
	if q.Slots < 1 {
		return fmt.Errorf("p4switch: query %q needs register slots", q.Name)
	}
	if q.Threshold == 0 {
		return fmt.Errorf("p4switch: query %q needs a threshold", q.Name)
	}
	return nil
}

// key extracts the query's (masked) key from a packet.
func (q Query) key(p *packet.Packet) packet.Addr {
	switch q.Key {
	case KeySrcIP:
		return p.Tuple.SrcIP.Prefix(q.PrefixBits)
	default:
		return p.Tuple.DstIP.Prefix(q.PrefixBits)
	}
}

// amount is the register increment for the packet.
func (q Query) amount(p *packet.Packet) uint64 {
	switch q.Reduce {
	case CountSYN:
		if p.Flags.Has(packet.FlagSYN) && !p.Flags.Has(packet.FlagACK) {
			return 1
		}
		return 0
	case CountRST:
		if p.Flags.Has(packet.FlagRST) {
			return 1
		}
		return 0
	case SumBytes:
		return uint64(p.Size)
	default:
		return 1
	}
}

// FiredKey is one key that crossed its query's threshold in an interval.
type FiredKey struct {
	Query string
	Key   packet.Addr
	// PrefixBits echoes the query granularity so steering rules mask
	// correctly.
	PrefixBits int
	Value      uint64
}
