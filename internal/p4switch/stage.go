package p4switch

import (
	"smartwatch/internal/packet"
	"smartwatch/internal/tier"
)

// SteerStage adapts the switch tier to the tier pipeline: it observes the
// packet for query refinement and applies the switch's forwarding
// decision (whitelist fast path, blacklist drop, steer-to-sNIC) as a
// pipeline verdict.
type SteerStage struct {
	SW *Switch
	// Tracker feeds EndInterval's refinement candidates; optional.
	Tracker *Tracker
}

// Name implements tier.Stage.
func (s *SteerStage) Name() string { return "steer" }

// Handle implements tier.Stage.
func (s *SteerStage) Handle(ctx *tier.Context) {
	if s.Tracker != nil {
		s.Tracker.Observe(ctx.Pkt)
	}
	switch s.SW.Process(ctx.Pkt) {
	case Forward:
		ctx.Verdict = tier.ForwardDirect
	case Drop:
		ctx.Verdict = tier.DropAtSwitch
	}
}

// CloseInterval runs the switch's end-of-interval control work: close the
// query epoch against the tracker's refinement candidates and steer every
// fired subset until SRAM runs out (at which point coarser queries are
// needed — same stop rule as the inline control loop had). It returns the
// number of subsets steered. The platform invokes it from the
// tier.KindInterval bus subscription.
func (s *Switch) CloseInterval(tr *Tracker) int {
	var candidates map[string][]packet.Addr
	if tr != nil {
		candidates = tr.Candidates()
	}
	fired := s.EndInterval(candidates)
	steered := 0
	for _, fk := range fired {
		if err := s.Steer(fk); err != nil {
			break // SRAM exhausted; coarser queries needed
		}
		steered++
	}
	return steered
}
