package p4switch

import (
	"fmt"
	"sort"

	"smartwatch/internal/packet"
)

// Action is the switch's per-packet forwarding decision.
type Action uint8

// Actions.
const (
	// Forward sends the packet straight to its destination (the bulk of
	// benign traffic; no sNIC involvement).
	Forward Action = iota
	// ToSNIC mirrors the packet through the sNIC-host subsystem
	// ("bump-in-the-wire" path).
	ToSNIC
	// Drop discards the packet (blacklisted source).
	Drop
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ToSNIC:
		return "to-snic"
	case Drop:
		return "drop"
	default:
		return "forward"
	}
}

// Config sizes the switch resources.
type Config struct {
	// SRAMBytes is the memory available to monitoring state (the paper
	// cites ~100 MB-class ASIC SRAM; per-experiment budgets are smaller).
	SRAMBytes int
	// Stages bounds the match-action pipeline depth (10–20 on Tofino).
	Stages int
	// MaxWhitelist bounds exact-match whitelist entries.
	MaxWhitelist int
}

// DefaultConfig returns a Tofino-like resource envelope.
func DefaultConfig() Config {
	return Config{SRAMBytes: 100 << 20, Stages: 12, MaxWhitelist: 1 << 16}
}

// Switch is one programmable switch running monitoring queries alongside
// its forwarding tables.
type Switch struct {
	cfg     Config
	queries []Query
	regs    [][]uint64 // [query][slot]
	// steer holds per-query sets of fired (masked) keys whose subsequent
	// packets are mirrored to the sNIC.
	steer map[string]map[packet.Addr]bool
	// whitelist short-circuits benign flows past steering.
	whitelist map[packet.FlowKey]bool
	// blacklist drops confirmed attackers at line rate.
	blacklist map[packet.Addr]bool
	stats     SwitchStats
}

// SwitchStats counts forwarding decisions and register traffic.
type SwitchStats struct {
	Forwarded, Steered, Dropped  uint64
	WhitelistHits, BlacklistHits uint64
	RegisterOps                  uint64
	Intervals                    uint64
}

// New builds a switch; queries are installed with InstallQueries.
func New(cfg Config) *Switch {
	if cfg.SRAMBytes <= 0 || cfg.Stages <= 0 {
		panic("p4switch: invalid config")
	}
	return &Switch{
		cfg:       cfg,
		steer:     map[string]map[packet.Addr]bool{},
		whitelist: map[packet.FlowKey]bool{},
		blacklist: map[packet.Addr]bool{},
	}
}

// bytesPerSlot is the register width (a 64-bit counter).
const bytesPerSlot = 8

// whitelistEntryBytes is the exact-match entry cost (13 B key + overhead).
const whitelistEntryBytes = 32

// steerEntryBytes is the TCAM/SRAM cost of one steering prefix entry.
const steerEntryBytes = 16

// stagesPerQuery is the pipeline depth one query consumes (hash, register
// update, threshold compare).
const stagesPerQuery = 2

// fixedStages covers forwarding, whitelist, blacklist and steering tables.
const fixedStages = 4

// InstallQueries replaces the query set (the control loop re-programs the
// switch between intervals). It fails if the set exceeds the pipeline or
// SRAM budget; previously collected register state is discarded.
func (s *Switch) InstallQueries(queries []Query) error {
	need := fixedStages + stagesPerQuery*len(queries)
	if need > s.cfg.Stages {
		return fmt.Errorf("p4switch: %d queries need %d stages, have %d", len(queries), need, s.cfg.Stages)
	}
	bytes := 0
	for _, q := range queries {
		if err := q.validate(); err != nil {
			return err
		}
		bytes += q.Slots * bytesPerSlot
	}
	if total := bytes + s.tableBytes(); total > s.cfg.SRAMBytes {
		return fmt.Errorf("p4switch: queries need %d B SRAM, have %d", total, s.cfg.SRAMBytes)
	}
	s.queries = append([]Query(nil), queries...)
	s.regs = make([][]uint64, len(queries))
	for i, q := range queries {
		s.regs[i] = make([]uint64, q.Slots)
	}
	return nil
}

// Queries returns the installed query set.
func (s *Switch) Queries() []Query { return append([]Query(nil), s.queries...) }

func (s *Switch) tableBytes() int {
	n := len(s.whitelist)*whitelistEntryBytes + len(s.blacklist)*steerEntryBytes
	for _, keys := range s.steer {
		n += len(keys) * steerEntryBytes
	}
	return n
}

// SRAMBytesUsed reports monitoring-state SRAM occupancy (registers +
// control tables).
func (s *Switch) SRAMBytesUsed() int {
	n := s.tableBytes()
	for i := range s.regs {
		n += len(s.regs[i]) * bytesPerSlot
	}
	return n
}

// Occupancy is SRAMBytesUsed over the budget.
func (s *Switch) Occupancy() float64 {
	return float64(s.SRAMBytesUsed()) / float64(s.cfg.SRAMBytes)
}

// Process runs one packet through the pipeline and returns the forwarding
// decision. Register state for every installed query is updated regardless
// of the decision (the queries monitor passively).
func (s *Switch) Process(p *packet.Packet) Action {
	// Blacklist: confirmed attackers are dropped at line rate.
	if s.blacklist[p.Tuple.SrcIP] {
		s.stats.Dropped++
		s.stats.BlacklistHits++
		return Drop
	}

	// Query register updates (constant work per query).
	for i := range s.queries {
		q := &s.queries[i]
		if !q.Filter.Match(p) {
			continue
		}
		amt := q.amount(p)
		if amt == 0 {
			continue
		}
		slot := packet.HashAddr(q.key(p), uint64(i)+0x9e37) % uint64(len(s.regs[i]))
		s.regs[i][slot] += amt
		s.stats.RegisterOps++
	}

	// Whitelisted flows bypass steering (the hoverboard shortcut).
	if s.whitelist[p.Key()] {
		s.stats.Forwarded++
		s.stats.WhitelistHits++
		return Forward
	}

	// Steering: packets of fired subsets go to the sNIC. The rule matches
	// both directions of the subset (mirror rules are installed for the
	// key field and its reverse) so responses transit the sNIC too.
	for i := range s.queries {
		q := &s.queries[i]
		keys := s.steer[q.Name]
		if len(keys) == 0 || !q.Filter.Match(p) {
			continue
		}
		var fwd, rev packet.Addr
		if q.Key == KeySrcIP {
			fwd, rev = p.Tuple.SrcIP.Prefix(q.PrefixBits), p.Tuple.DstIP.Prefix(q.PrefixBits)
		} else {
			fwd, rev = p.Tuple.DstIP.Prefix(q.PrefixBits), p.Tuple.SrcIP.Prefix(q.PrefixBits)
		}
		if keys[fwd] || keys[rev] {
			s.stats.Steered++
			return ToSNIC
		}
	}

	s.stats.Forwarded++
	return Forward
}

// EndInterval closes a monitoring interval: it scans every query's
// registers, reports slots above threshold (attributed to the keys seen),
// and clears the registers. Because registers are hash-indexed, aliased
// keys fire together — the coarse-grained behaviour the sNIC tier refines.
//
// The switch cannot invert a hash, so callers pass the candidate keys seen
// this interval per query (the control plane learns them from the sNIC /
// sampled packets in real deployments; the simulator passes the exact
// candidates).
func (s *Switch) EndInterval(candidates map[string][]packet.Addr) []FiredKey {
	s.stats.Intervals++
	var fired []FiredKey
	for i := range s.queries {
		q := &s.queries[i]
		seen := map[packet.Addr]bool{}
		for _, k := range candidates[q.Name] {
			mk := k.Prefix(q.PrefixBits)
			if seen[mk] {
				continue
			}
			seen[mk] = true
			slot := packet.HashAddr(mk, uint64(i)+0x9e37) % uint64(len(s.regs[i]))
			if v := s.regs[i][slot]; v >= q.Threshold {
				fired = append(fired, FiredKey{Query: q.Name, Key: mk, PrefixBits: q.PrefixBits, Value: v})
			}
		}
		clear(s.regs[i])
	}
	sort.Slice(fired, func(a, b int) bool {
		if fired[a].Query != fired[b].Query {
			return fired[a].Query < fired[b].Query
		}
		return fired[a].Key < fired[b].Key
	})
	return fired
}

// Steer installs mirror entries so subsequent packets of the fired subset
// go to the sNIC. It fails when SRAM is exhausted.
func (s *Switch) Steer(fk FiredKey) error {
	if s.SRAMBytesUsed()+steerEntryBytes > s.cfg.SRAMBytes {
		return fmt.Errorf("p4switch: SRAM exhausted installing steer entry")
	}
	m := s.steer[fk.Query]
	if m == nil {
		m = map[packet.Addr]bool{}
		s.steer[fk.Query] = m
	}
	m[fk.Key] = true
	return nil
}

// Unsteer removes a mirror entry (subset reclassified as benign).
func (s *Switch) Unsteer(query string, key packet.Addr) {
	delete(s.steer[query], key)
}

// SteerCount returns the installed mirror-entry count.
func (s *Switch) SteerCount() int {
	n := 0
	for _, m := range s.steer {
		n += len(m)
	}
	return n
}

// Whitelist installs an exact-match benign-flow entry; packets of the flow
// bypass sNIC steering from now on. It fails when the table is full or
// SRAM is exhausted.
func (s *Switch) Whitelist(k packet.FlowKey) error {
	if len(s.whitelist) >= s.cfg.MaxWhitelist {
		return fmt.Errorf("p4switch: whitelist full (%d entries)", s.cfg.MaxWhitelist)
	}
	if s.SRAMBytesUsed()+whitelistEntryBytes > s.cfg.SRAMBytes {
		return fmt.Errorf("p4switch: SRAM exhausted installing whitelist entry")
	}
	s.whitelist[k] = true
	return nil
}

// WhitelistCount returns the number of whitelisted flows.
func (s *Switch) WhitelistCount() int { return len(s.whitelist) }

// Blacklist installs a drop rule for the source address.
func (s *Switch) Blacklist(a packet.Addr) { s.blacklist[a] = true }

// Blacklisted reports whether the address is blocked.
func (s *Switch) Blacklisted(a packet.Addr) bool { return s.blacklist[a] }

// WhitelistEntries lists the installed benign-flow keys in a
// deterministic order (canonical key fields ascending) — the control
// API's table dump. O(n log n); intended for operator queries, not the
// datapath.
func (s *Switch) WhitelistEntries() []packet.FlowKey {
	out := make([]packet.FlowKey, 0, len(s.whitelist))
	for k := range s.whitelist {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.LoIP != b.LoIP {
			return a.LoIP < b.LoIP
		}
		if a.HiIP != b.HiIP {
			return a.HiIP < b.HiIP
		}
		if a.LoPort != b.LoPort {
			return a.LoPort < b.LoPort
		}
		if a.HiPort != b.HiPort {
			return a.HiPort < b.HiPort
		}
		return a.Proto < b.Proto
	})
	return out
}

// BlacklistEntries lists the blocked source addresses in ascending order
// (deterministic control-API dump).
func (s *Switch) BlacklistEntries() []packet.Addr {
	out := make([]packet.Addr, 0, len(s.blacklist))
	for a := range s.blacklist {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns the cumulative decision counters.
func (s *Switch) Stats() SwitchStats { return s.stats }
