package p4switch

import (
	"testing"

	"smartwatch/internal/packet"
	"smartwatch/internal/stats"
)

func BenchmarkSwitchProcess(b *testing.B) {
	sw := New(DefaultConfig())
	if err := sw.InstallQueries([]Query{sshQuery(), {
		Name: "syn", Filter: Predicate{Proto: packet.ProtoTCP},
		Key: KeySrcIP, PrefixBits: 16, Reduce: CountSYN, Threshold: 100, Slots: 1 << 14,
	}}); err != nil {
		b.Fatal(err)
	}
	_ = sw.Steer(FiredKey{Query: "ssh-conns", Key: packet.MustParseAddr("10.1.0.0"), PrefixBits: 16})
	rng := stats.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := packet.Packet{
			Tuple: packet.FiveTuple{
				SrcIP: packet.Addr(rng.Uint64()), DstIP: packet.Addr(rng.Uint64()),
				SrcPort: uint16(i), DstPort: 22, Proto: packet.ProtoTCP,
			},
			Size: 64, Flags: packet.FlagSYN,
		}
		sw.Process(&p)
	}
}

func BenchmarkEndInterval(b *testing.B) {
	sw := New(DefaultConfig())
	q := sshQuery()
	q.Slots = 1 << 14
	if err := sw.InstallQueries([]Query{q}); err != nil {
		b.Fatal(err)
	}
	candidates := map[string][]packet.Addr{}
	for i := 0; i < 4096; i++ {
		candidates[q.Name] = append(candidates[q.Name], packet.Addr(uint32(i)<<16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.EndInterval(candidates)
	}
}
