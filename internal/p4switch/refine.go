package p4switch

import "smartwatch/internal/packet"

// Tracker collects the distinct candidate keys each query saw during an
// interval, the control-plane side channel EndInterval needs to attribute
// fired register slots to keys. Real deployments learn candidates from
// mirrored samples; the simulator observes them exactly, bounded by
// maxKeys per query to stay honest about control-plane memory.
type Tracker struct {
	maxKeys int
	seen    map[string]map[packet.Addr]bool
	queries []Query
}

// NewTracker builds a tracker for the installed query set.
func NewTracker(queries []Query, maxKeys int) *Tracker {
	if maxKeys <= 0 {
		maxKeys = 1 << 20
	}
	t := &Tracker{maxKeys: maxKeys, seen: map[string]map[packet.Addr]bool{}, queries: queries}
	for _, q := range queries {
		t.seen[q.Name] = map[packet.Addr]bool{}
	}
	return t
}

// Observe records the packet's masked key for every matching query.
func (t *Tracker) Observe(p *packet.Packet) {
	for i := range t.queries {
		q := &t.queries[i]
		if !q.Filter.Match(p) || q.amount(p) == 0 {
			continue
		}
		m := t.seen[q.Name]
		if len(m) >= t.maxKeys {
			continue
		}
		m[q.key(p)] = true
	}
}

// Candidates returns the per-query key sets and resets them for the next
// interval.
func (t *Tracker) Candidates() map[string][]packet.Addr {
	out := map[string][]packet.Addr{}
	for name, m := range t.seen {
		keys := make([]packet.Addr, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		out[name] = keys
		t.seen[name] = map[packet.Addr]bool{}
	}
	return out
}

// Refiner implements Sonata-style iterative refinement for one logical
// query: intervals start at a coarse prefix; keys that fire zoom to the
// next granularity in the following interval, reusing the same switch
// memory. Only traffic inside fired parent prefixes is examined at finer
// levels — the "narrow window" that makes standalone Sonata miss attacks
// which expire before the zoom reaches them (Table 4). SmartWatch instead
// steers the fired coarse subset to the sNIC immediately.
type Refiner struct {
	base    Query
	levels  []int
	level   int
	parents map[packet.Addr]bool // fired prefixes at the previous level
}

// NewRefiner builds a refiner walking the given prefix levels (e.g.
// 8, 16, 32). levels must be strictly increasing.
func NewRefiner(base Query, levels []int) *Refiner {
	if len(levels) == 0 {
		panic("p4switch: refiner needs at least one level")
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] <= levels[i-1] {
			panic("p4switch: refiner levels must increase")
		}
	}
	return &Refiner{base: base, levels: levels}
}

// CurrentQuery returns the query to install for the coming interval.
func (r *Refiner) CurrentQuery() Query {
	q := r.base
	q.PrefixBits = r.levels[r.level]
	return q
}

// Advance consumes the interval's fired keys. Keys outside the previously
// fired parent prefixes are discarded (Sonata only examines the zoomed
// window). At the final level the surviving keys are detections; the
// refiner then restarts at the coarsest level.
func (r *Refiner) Advance(fired []FiredKey) (detections []FiredKey) {
	var kept []FiredKey
	for _, f := range fired {
		if f.Query != r.base.Name {
			continue
		}
		if r.level > 0 {
			parent := f.Key.Prefix(r.levels[r.level-1])
			if !r.parents[parent] {
				continue
			}
		}
		kept = append(kept, f)
	}
	if r.level == len(r.levels)-1 {
		r.level = 0
		r.parents = nil
		return kept
	}
	if len(kept) == 0 {
		// Nothing to zoom into: restart.
		r.level = 0
		r.parents = nil
		return nil
	}
	r.parents = map[packet.Addr]bool{}
	for _, f := range kept {
		r.parents[f.Key] = true
	}
	r.level++
	return nil
}

// Level returns the refiner's current prefix level.
func (r *Refiner) Level() int { return r.levels[r.level] }
