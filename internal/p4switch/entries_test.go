package p4switch

import (
	"testing"

	"smartwatch/internal/packet"
)

func TestTableEntriesDeterministicOrder(t *testing.T) {
	sw := New(DefaultConfig())
	keys := []packet.FlowKey{
		{LoIP: packet.MustParseAddr("10.0.0.9"), HiIP: packet.MustParseAddr("10.0.0.10"), LoPort: 40, HiPort: 80, Proto: packet.ProtoTCP},
		{LoIP: packet.MustParseAddr("10.0.0.1"), HiIP: packet.MustParseAddr("10.0.0.2"), LoPort: 22, HiPort: 999, Proto: packet.ProtoTCP},
		{LoIP: packet.MustParseAddr("10.0.0.1"), HiIP: packet.MustParseAddr("10.0.0.2"), LoPort: 21, HiPort: 999, Proto: packet.ProtoTCP},
	}
	// Install in two different orders; the dump must come out identical.
	for _, k := range keys {
		if err := sw.Whitelist(k); err != nil {
			t.Fatal(err)
		}
	}
	sw2 := New(DefaultConfig())
	for i := len(keys) - 1; i >= 0; i-- {
		if err := sw2.Whitelist(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	a, b := sw.WhitelistEntries(), sw2.WhitelistEntries()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("entry counts: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if a[0].LoPort != 21 {
		t.Fatalf("expected lowest port first, got %v", a[0])
	}

	sw.Blacklist(packet.MustParseAddr("10.9.9.9"))
	sw.Blacklist(packet.MustParseAddr("10.1.1.1"))
	bl := sw.BlacklistEntries()
	if len(bl) != 2 || bl[0] != packet.MustParseAddr("10.1.1.1") {
		t.Fatalf("blacklist dump wrong: %v", bl)
	}
}
