#!/bin/sh
# serve-smoke (DESIGN.md §12.3): end-to-end gate for the -serve daemon.
# Starts the daemon tailing a fixture pcap (-follow keeps it alive after
# the fixture is consumed), exercises the control API (status, pause/
# resume, whitelist, blacklist, snapshot) plus the live /metrics
# endpoint, then sends SIGTERM and asserts a clean drain: exit code 0,
# a final report on stdout, and a valid per-interval metrics stream via
# cmd/metricscheck.
set -eu

GO=${GO:-go}
PORT=${SERVE_SMOKE_PORT:-9193}
BASE="http://127.0.0.1:$PORT"
TMP=$(mktemp -d "${TMPDIR:-/tmp}/serve-smoke.XXXXXX")
PID=

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    [ -f "$TMP/stderr.log" ] && sed 's/^/  daemon: /' "$TMP/stderr.log" >&2
    exit 1
}

cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "serve-smoke: building tools"
$GO build -o "$TMP" ./cmd/tracegen ./cmd/smartwatch ./cmd/metricscheck

echo "serve-smoke: generating fixture pcap"
"$TMP/tracegen" -out "$TMP/fixture.pcap" -preset caida2018 \
    -attack ssh-bruteforce -duration 300ms

echo "serve-smoke: starting daemon on $BASE"
"$TMP/smartwatch" -serve -follow -in "$TMP/fixture.pcap" -switch \
    -metrics "$TMP/metrics.jsonl" -expvar "127.0.0.1:$PORT" \
    >"$TMP/stdout.log" 2>"$TMP/stderr.log" &
PID=$!

# Wait until the control API is up and the fixture has been ingested far
# enough to close at least one interval (snapshot seq appears).
i=0
until curl -sf "$BASE/control/snapshot" 2>/dev/null | grep -q '"seq"'; do
    i=$((i + 1))
    [ "$i" -ge 100 ] || kill -0 "$PID" 2>/dev/null || fail "daemon died during startup"
    [ "$i" -lt 100 ] || fail "no interval snapshot after 20s"
    sleep 0.2
done

echo "serve-smoke: control API checks"
curl -sf "$BASE/control/status" | grep -q '"state": "running"' \
    || fail "status not running"
curl -sf -X POST "$BASE/control/pause" | grep -q '"paused": true' \
    || fail "pause not acknowledged"
curl -sf "$BASE/control/status" | grep -q '"paused": true' \
    || fail "status does not show paused"
curl -sf -X POST "$BASE/control/resume" | grep -q '"paused": false' \
    || fail "resume not acknowledged"
curl -sf -X POST "$BASE/control/whitelist?flow=10.0.0.1:2000-10.0.0.2:80/tcp" \
    | grep -q '"whitelisted"' || fail "whitelist install rejected"
curl -sf "$BASE/control/whitelist" | grep -q '10.0.0.1:2000' \
    || fail "installed whitelist entry not in dump"
curl -sf -X POST "$BASE/control/blacklist?addr=10.3.3.3" \
    | grep -q '"blacklisted"' || fail "blacklist install rejected"
curl -sf "$BASE/control/blacklist" | grep -q '10.3.3.3' \
    || fail "installed blacklist entry not in dump"
curl -sf "$BASE/control/snapshot" | grep -q '"counts_delta"' \
    || fail "snapshot missing interval delta"
# Satellite: the metrics endpoint serves live DURING the drive.
curl -sf "$BASE/metrics" | grep -q 'packets.total' \
    || fail "/metrics not live during the drive"

echo "serve-smoke: SIGTERM -> graceful drain"
kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
PID=
[ "$rc" -eq 0 ] || fail "daemon exited $rc after SIGTERM"
grep -q '^packets: total=' "$TMP/stdout.log" \
    || fail "no final report on stdout"

echo "serve-smoke: validating metrics stream"
"$TMP/metricscheck" -min-snapshots 2 \
    -require packets.total,flowcache.occupancy,snic.processed,host.flush.count \
    <"$TMP/metrics.jsonl" || fail "metricscheck rejected the stream"

echo "serve-smoke: OK"
