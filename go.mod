module smartwatch

go 1.23
