# Developer workflow for the SmartWatch reproduction. Everything is
# stdlib-only Go; `make check` is what CI (and the tier-1 gate) runs.

GO ?= go

.PHONY: all build vet test race shards policies pipeline cluster lowslow check bench profile experiments metrics-smoke serve-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-bearing packages: the FlowCache
# latch protocol, the sNIC engine, the platform control loop, the parallel
# experiment runner and the buffered stream bridge. -short skips the
# full-sweep determinism test (covered by `make test`).
race:
	$(GO) test -race -short ./internal/flowcache/ ./internal/snic/ ./internal/core/ ./internal/experiments/ ./internal/packet/

# Shard-determinism gate (DESIGN.md §8.4, §9, §12): the sharded FlowCache,
# the tier pipeline, the event bus, the batched datapath and the session
# lifecycle under the race detector — parallel replay must reproduce
# sequential state, the tiered platform must match legacy, every batch
# size must be byte-identical to the per-packet drive, and the session
# control plane must be race-free against a live ingest.
shards:
	$(GO) vet ./...
	$(GO) test -race -run 'Shard|Bus|Pipeline|Event|TierPipeline|AtomicCounts|Batch|Session' ./internal/flowcache/ ./internal/tier/ ./internal/core/

# Pipelined-drive gate (DESIGN.md §13): the SPSC ring, the persistent
# shard worker pool (steady-state alloc-freedom, goroutine-leak /
# restart lifecycle), and the tier-overlap determinism sweep — the
# pipelined drive must be byte-identical to the sequential oracle at
# every Shards × BatchSize combination, including mid-stream Exec
# barriers — all under the race detector. The sweep replays the full
# platform dozens of times; allow a generous timeout on slow boxes.
pipeline:
	$(GO) vet ./...
	$(GO) test -race -timeout 45m -run 'SPSC|Pool|Pipelined' ./internal/container/ ./internal/flowcache/ ./internal/core/

# Replacement-policy / adaptive-controller gate (DESIGN.md §11): golden
# LRU-LPC extraction, policy divergence + determinism, controller
# hysteresis/feedback tables and the adaptive determinism suite under
# the race detector, then the policies experiment table at reduced scale.
policies:
	$(GO) vet ./...
	$(GO) test -race -run 'Policy|S3FIFO|Controller|Adaptive|Feedback|CleanRowsBounded' ./internal/flowcache/
	$(GO) run ./cmd/experiments -scale 0.1 policies

# Cluster gate (DESIGN.md §14): the full cluster runner suite under the
# race detector — the two-oracle determinism sweep (parallel drive
# byte-identical to the sequential reference, integer surface equal to
# the single-platform partition twin), hazard-asserted schedules,
# failure injection (worker crash, stall, load-policy route-around) and
# the merged-report/metrics contract. The oracle sweep replays whole
# clusters many times; allow a generous timeout on slow boxes.
cluster:
	$(GO) vet ./...
	$(GO) test -race -timeout 45m ./internal/cluster/

# Low-and-slow gate (DESIGN.md §15): the injector/detector suite, the
# timing-wheel wraparound audit, the pin-budget boundary race, the
# Lite-mode pinned-retention oracles and the platform determinism sweep
# with the wheel-backed detector in the loop — all under the race
# detector — then the lowslow experiment table at reduced scale.
lowslow:
	$(GO) vet ./...
	$(GO) test -race -run 'LowSlow|SlowRead|SlowPost|ConnExhaust|TimingWheel|PinBudget|PinStarve|PinAge|CleanRowParks|UnpinParked|ModeChurn|UpdateStatePin' \
		./internal/trace/ ./internal/detect/ ./internal/host/ ./internal/flowcache/ ./internal/core/
	$(GO) run ./cmd/experiments -scale 0.25 lowslow

check: vet build test race

# Performance snapshot (see DESIGN.md §7.4). Writes BENCH_dev.json; rename
# to BENCH_<pr>.json when committing a PR's trajectory point.
bench:
	$(GO) run ./cmd/bench -out BENCH_dev.json

# CPU and heap profiles of the micro-benchmark hot paths, for
# `go tool pprof prof/bench.cpu.pprof`. cmd/experiments takes the same
# -cpuprofile/-memprofile flags for profiling the evaluation harnesses.
profile:
	mkdir -p prof
	$(GO) run ./cmd/bench -out prof/BENCH_prof.json \
		-cpuprofile prof/bench.cpu.pprof -memprofile prof/bench.mem.pprof

# Full-scale regeneration of every table/figure (EXPERIMENTS.md sizes).
experiments:
	$(GO) run ./cmd/experiments all > experiments_full.txt

# Observability smoke (DESIGN.md §10): replay a small generated trace with
# -metrics -, then validate the JSON-lines snapshot stream end-to-end —
# parses, virtual time and counters monotonic, key series non-zero.
SMOKE_PCAP ?= /tmp/smartwatch-metrics-smoke.pcap
metrics-smoke:
	$(GO) run ./cmd/tracegen -out $(SMOKE_PCAP) -preset caida2018 -attack ssh-bruteforce -duration 200ms
	$(GO) run ./cmd/smartwatch -in $(SMOKE_PCAP) -switch -metrics - | \
		$(GO) run ./cmd/metricscheck -min-snapshots 2 \
			-require packets.total,flowcache.occupancy,snic.processed,host.flush.count
	rm -f $(SMOKE_PCAP)

# Daemon smoke (DESIGN.md §12.3): start `smartwatch -serve` tailing a
# fixture pcap, drive the control API (pause/resume, whitelist/blacklist,
# snapshot, live /metrics), SIGTERM, then assert a clean drain and a
# valid metrics stream via cmd/metricscheck.
serve-smoke:
	sh scripts/serve_smoke.sh

clean:
	rm -f BENCH_dev.json
	rm -rf prof
