// Command tracegen writes synthetic evaluation traces as standard pcap
// files: CAIDA-like backbone backgrounds, the Wisconsin-style datacenter
// mix, and any of the paper's attacks, optionally merged over a
// background — the editcap/mergecap/tcprewrite pipeline in one tool.
//
// Examples:
//
//	tracegen -out bg.pcap -preset caida2018 -duration 1s
//	tracegen -out attack.pcap -attack ssh-bruteforce
//	tracegen -out mix.pcap -preset dc -attack portscan -snaplen 64
package main

import (
	"flag"
	"fmt"
	"os"

	"smartwatch/internal/packet"
	"smartwatch/internal/pcap"
	"smartwatch/internal/trace"
)

func main() {
	var (
		out      = flag.String("out", "", "output pcap path (required)")
		preset   = flag.String("preset", "", "background preset: caida2015|caida2016|caida2018|caida2019|dc")
		attack   = flag.String("attack", "", "attack to inject: ssh-bruteforce|ftp-bruteforce|kerberos|portscan|forged-rst|slowloris|dns-amplification|covert-timing|fingerprint|microburst|worm|ssl-expiry|tcp-incomplete")
		duration = flag.Duration("duration", 0, "override background duration (e.g. 500ms)")
		seed     = flag.Uint64("seed", 1, "generator seed")
		snaplen  = flag.Int("snaplen", 0, "truncate capture length (e.g. 64 for stress traces)")
		shift    = flag.Duration("shift", 0, "timestamp-shift the attack before merging")
		meta     = flag.Bool("meta", true, "embed application metadata TLVs (auth outcomes, cert expiry)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var streams []packet.Stream
	if *preset != "" {
		w, err := background(*preset, *seed, int64(*duration))
		if err != nil {
			fatal(err)
		}
		streams = append(streams, w.Stream())
	}
	if *attack != "" {
		s, err := attackStream(*attack, *seed)
		if err != nil {
			fatal(err)
		}
		if *shift != 0 {
			s = pcap.Shift(s, int64(*shift))
		}
		streams = append(streams, s)
	}
	if len(streams) == 0 {
		fatal(fmt.Errorf("nothing to generate: pass -preset and/or -attack"))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w := pcap.NewWriter(f, pcap.WriterConfig{
		SnapLen: *snaplen,
		Encode:  packet.EncodeOptions{EmbedMeta: *meta},
	})
	if err := pcap.WriteStream(w, pcap.Merge(streams...)); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d packets to %s\n", w.Count(), *out)
}

func background(preset string, seed uint64, durationNs int64) (*trace.Workload, error) {
	var w *trace.Workload
	switch preset {
	case "caida2015":
		w = trace.CAIDA(2015)
	case "caida2016":
		w = trace.CAIDA(2016)
	case "caida2018":
		w = trace.CAIDA(2018)
	case "caida2019":
		w = trace.CAIDA(2019)
	case "dc":
		w = trace.WisconsinDC()
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
	cfg := w.Config()
	cfg.Seed = seed
	if durationNs > 0 {
		cfg.Duration = durationNs
	}
	return trace.NewWorkload(cfg), nil
}

func attackStream(name string, seed uint64) (packet.Stream, error) {
	switch name {
	case "ssh-bruteforce":
		return trace.BruteForce(trace.BruteForceConfig{Seed: seed}).Stream(), nil
	case "ftp-bruteforce":
		return trace.BruteForce(trace.BruteForceConfig{Seed: seed, Port: trace.PortFTP}).Stream(), nil
	case "kerberos":
		return trace.Kerberos(trace.KerberosConfig{Seed: seed}).Stream(), nil
	case "portscan":
		return trace.PortScan(trace.PortScanConfig{Seed: seed}).Stream(), nil
	case "forged-rst":
		return trace.ForgedRST(trace.ForgedRSTConfig{Seed: seed, ForgedFraction: 0.5}).Stream(), nil
	case "slowloris":
		return trace.Slowloris(trace.SlowlorisConfig{Seed: seed}).Stream(), nil
	case "dns-amplification":
		return trace.DNSAmplification(trace.DNSAmplificationConfig{Seed: seed}).Stream(), nil
	case "covert-timing":
		return trace.CovertTiming(trace.CovertTimingConfig{Seed: seed}).Stream(), nil
	case "fingerprint":
		return trace.Fingerprint(trace.FingerprintConfig{Seed: seed}).Stream(), nil
	case "microburst":
		return trace.Microburst(trace.MicroburstConfig{Seed: seed}).Stream(), nil
	case "worm":
		return trace.Worm(trace.WormConfig{Seed: seed}).Stream(), nil
	case "ssl-expiry":
		return trace.SSLExpiry(trace.SSLExpiryConfig{Seed: seed}).Stream(), nil
	case "tcp-incomplete":
		return trace.Incomplete(trace.IncompleteConfig{Seed: seed}).Stream(), nil
	default:
		return nil, fmt.Errorf("unknown attack %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
