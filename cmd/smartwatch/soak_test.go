package main

import (
	"io"
	"runtime"
	"testing"
	"time"

	"smartwatch/internal/core"
	"smartwatch/internal/obs"
	"smartwatch/internal/trace"
)

// TestDaemonSoakFlatHeap is the ISSUE 7 soak gate: ≥10M generated packets
// through the -serve daemon path (source → pause gate → session → engine)
// with a flat heap and a clean source-exhaustion drain. The KV retention
// cap is what keeps the heap flat across the run's ~80 interval flushes;
// the test asserts both the cap and the ceiling.
//
// Heap flatness is measured as post-GC HeapAlloc at every ~2M ingested
// packets: after the first checkpoint (steady state: FlowCache resident,
// retention window full) no later checkpoint may exceed it by more than
// the slack. A per-packet leak as small as 8 bytes would blow the slack
// by an order of magnitude over the remaining 8M packets.
func TestDaemonSoakFlatHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: ~10M packets through the daemon")
	}
	const soakPackets = 10_000_000
	const retention = 8

	src := trace.NewSource(trace.SourceConfig{
		Workload: trace.WorkloadConfig{
			Seed: 3, Flows: 4000, PacketRate: 5e6, Duration: 5e8,
		},
		Repeat:     -1, // until MaxPackets
		MaxPackets: soakPackets,
	})
	pl := core.New(core.Config{
		IntervalNs:    20e6,
		Shards:        4,
		BatchSize:     64,
		Metrics:       obs.NewRegistry(),
		MetricsWriter: io.Discard,
	})
	pl.KV().SetRetention(retention)
	d := newDaemon(pl, src, 512)

	type sample struct {
		ingested  uint64
		heapAlloc uint64
	}
	var samples []sample
	done := make(chan struct{})
	go func() {
		defer close(done)
		var next uint64 = 2_000_000
		for d.ses.State() != core.SessionDone {
			if ing := d.ses.Ingested(); ing >= next {
				runtime.GC()
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				samples = append(samples, sample{ing, ms.HeapAlloc})
				next += 2_000_000
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	rep, err := d.run() // returns on source exhaustion → auto-drain
	if err != nil {
		t.Fatalf("daemon run: %v", err)
	}
	<-done

	if got := rep.Counts.Total; got != soakPackets {
		t.Fatalf("drained total = %d, want %d", got, soakPackets)
	}
	if rep.Counts.Total != rep.Counts.ToSNIC {
		t.Errorf("standalone platform must sNIC everything: %+v", rep.Counts)
	}
	if d.ses.State() != core.SessionDone {
		t.Fatalf("session state after drain = %v", d.ses.State())
	}
	if rep.Metrics == nil {
		t.Fatal("no final metrics snapshot after drain")
	}
	if got := len(pl.KV().Intervals()); got > retention {
		t.Errorf("KV holds %d intervals, retention %d", got, retention)
	}
	if pl.KV().DroppedIntervals() == 0 {
		t.Error("retention never evicted; soak did not exercise the cap")
	}

	if len(samples) < 3 {
		t.Fatalf("only %d heap checkpoints; soak too short to judge flatness", len(samples))
	}
	baseline := samples[0].heapAlloc
	const slackBytes = 64 << 20
	for _, s := range samples[1:] {
		if s.heapAlloc > baseline+slackBytes {
			t.Errorf("heap grew: %d MiB at %d pkts vs baseline %d MiB (+%d MiB slack)",
				s.heapAlloc>>20, s.ingested, baseline>>20, int64(slackBytes)>>20)
		}
	}
	t.Logf("soak: %d packets, %d intervals, heap %d→%d MiB over %d checkpoints, %d intervals evicted",
		rep.Counts.Total, rep.Counts.Intervals,
		baseline>>20, samples[len(samples)-1].heapAlloc>>20, len(samples),
		pl.KV().DroppedIntervals())
}
