// Command smartwatch runs the full monitoring platform over a pcap trace
// (e.g. one produced by tracegen) and prints the detection report: alerts,
// traffic split across the three tiers, FlowCache statistics, and the
// flow-log summary.
//
// Example:
//
//	tracegen -out mix.pcap -preset caida2018 -attack ssh-bruteforce -duration 500ms
//	smartwatch -in mix.pcap -switch -detectors ssh,portscan,rst
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"strings"

	"smartwatch/internal/cluster"
	"smartwatch/internal/core"
	"smartwatch/internal/detect"
	"smartwatch/internal/flowcache"
	"smartwatch/internal/host"
	"smartwatch/internal/obs"
	"smartwatch/internal/p4switch"
	"smartwatch/internal/packet"
	"smartwatch/internal/pcap"
	"smartwatch/internal/trace"
)

func main() {
	var (
		in          = flag.String("in", "", "input pcap trace (required unless -gen)")
		useSwitch   = flag.Bool("switch", false, "enable the P4 switch tier (coarse queries + steering)")
		detectors   = flag.String("detectors", "ssh,portscan,rst,incomplete,dns,worm,ssl", "comma-separated detectors: ssh,ftp,kerberos,portscan,rst,incomplete,dns,worm,ssl,microburst,lowslow")
		intervalMs  = flag.Int("interval", 100, "monitoring interval (virtual ms)")
		rowBits     = flag.Int("rowbits", 14, "FlowCache rows = 2^rowbits (x12 buckets)")
		shards      = flag.Int("shards", 1, "FlowCache shards (power of two; capacity is split, not multiplied)")
		batch       = flag.Int("batch", 1, "ingest batch size (vectors of this many packets; 1 = per-packet drive)")
		pipeline    = flag.Bool("pipeline", false, "overlap flow-identity prep of the next batch with stateful work of the current one (requires -batch > 1; byte-identical results)")
		policy      = flag.String("policy", "", "FlowCache replacement policy: lru-lpc (default), lru, s3fifo")
		adaptive    = flag.Bool("adaptive", false, "self-tuning mode controllers (metrics-driven threshold + pin-budget feedback)")
		verbose     = flag.Bool("v", false, "print every alert")
		ipfixOut    = flag.String("ipfix", "", "export the flow log as IPFIX to this file")
		emitP4      = flag.String("emit-p4", "", "write the switch query set as a P4-16 program to this file (requires -switch)")
		metricsOut  = flag.String("metrics", "", "emit a JSON-lines metrics snapshot each interval to this file (- for stdout)")
		expvarAddr  = flag.String("expvar", "", "serve live metrics over HTTP at this address (/debug/vars, /metrics, /debug/pprof), updated at every interval close during the run; in batch mode the server keeps running after the run until interrupted")
		serve       = flag.Bool("serve", false, "daemon mode: stream from the source through a lifecycle session, expose the /control API on the -expvar server, drain gracefully on SIGTERM")
		follow      = flag.Bool("follow", false, "tail -in as a growing pcap (tolerates partial trailing records; -serve)")
		gen         = flag.String("gen", "", "synthetic source instead of -in: caida2015|caida2016|caida2018|caida2019|dc")
		genRepeat   = flag.Int("gen-repeat", -1, "generator laps, timestamps shifted per lap (-1 = until drained; -serve)")
		genRate     = flag.Float64("gen-rate", 0, "wall-clock pacing for -gen in packets/sec (0 = as fast as consumed)")
		genMax      = flag.Int64("gen-max", 0, "stop the generator after this many packets (0 = unbounded)")
		kvRetention = flag.Int("kv-retention", 0, "keep at most N flow-log intervals resident (0 = unbounded; -serve defaults to 64 to bound the heap)")
		workers     = flag.Int("workers", 1, "parallel platform workers behind one shared steering tier (power of two; cache capacity is split, not multiplied)")
		steer       = flag.String("steer", "hash", "cluster steering policy: hash (deterministic consistent hashing) or load (ring-successor load spill; not reproducible)")
	)
	flag.Parse()
	if *in == "" && *gen == "" {
		flag.Usage()
		os.Exit(2)
	}

	dets, err := buildDetectors(*detectors)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		IntervalNs: int64(*intervalMs) * 1e6,
		Detectors:  dets,
		Shards:     *shards,
		BatchSize:  *batch,
		Pipelined:  *pipeline,
	}
	if *pipeline && *batch <= 1 {
		fatal(fmt.Errorf("-pipeline requires -batch > 1"))
	}
	if *rowBits > 0 {
		cfg.Cache = flowcache.DefaultConfig(*rowBits)
	}
	if *policy != "" {
		cfg.Cache.Policy = *policy
		if err := cfg.Cache.Validate(); err != nil {
			fatal(err) // unknown -policy names fail here with the known list
		}
	}
	if *adaptive {
		cfg.Controller = flowcache.DefaultControllerConfig()
		cfg.Controller.Adaptive.Enabled = true
	}
	if *useSwitch {
		cfg.EnableSwitch = true
		cfg.Queries = defaultQueries()
	}
	steerPolicy, err := cluster.ParseSteerPolicy(*steer)
	if err != nil {
		fatal(err)
	}
	if *workers < 1 || *workers&(*workers-1) != 0 {
		fatal(fmt.Errorf("-workers must be a power of two, got %d", *workers))
	}
	cfg.Workers = *workers
	var metricsFile *os.File
	if *metricsOut != "" || *expvarAddr != "" || *serve {
		cfg.Metrics = obs.NewRegistry()
	}
	switch *metricsOut {
	case "":
	case "-":
		cfg.MetricsWriter = os.Stdout
	default:
		metricsFile, err = os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		cfg.MetricsWriter = metricsFile
	}

	if *serve {
		// Daemon mode: build the source, bound the in-memory flow log,
		// mount the control API next to the expvar/metrics endpoints, and
		// stream until drained.
		if *kvRetention == 0 {
			*kvRetention = 64
		}
		addr := *expvarAddr
		if addr == "" {
			addr = "127.0.0.1:9090"
		}
		src, err := buildSource(*in, *follow, *gen, *genRepeat, *genRate, *genMax)
		if err != nil {
			fatal(err)
		}
		chunk := 512
		if cfg.BatchSize > 1 {
			chunk = ((chunk + cfg.BatchSize - 1) / cfg.BatchSize) * cfg.BatchSize
		}
		if *workers > 1 {
			cl := buildCluster(cfg, *workers, steerPolicy, *detectors)
			for _, wpl := range cl.Workers() {
				wpl.KV().SetRetention(*kvRetention)
			}
			d := newClusterDaemon(cl, src, chunk)
			d.registerControlAPI()
			if err := serveExpvar(addr, cfg.Metrics); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "smartwatch: serving control API at http://%s/control/status (SIGTERM to drain)\n", addr)
			if _, err := d.run(); err != nil {
				fatal(err)
			}
			printClusterReport(cl, d.clRep, *verbose)
			finishClusterOutputs(cl, d.clRep, *ipfixOut, *emitP4, metricsFile, *metricsOut)
			return
		}
		pl := core.New(cfg)
		pl.KV().SetRetention(*kvRetention)
		d := newDaemon(pl, src, chunk)
		d.registerControlAPI()
		if err := serveExpvar(addr, cfg.Metrics); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "smartwatch: serving control API at http://%s/control/status (SIGTERM to drain)\n", addr)
		rep, err := d.run()
		if err != nil {
			fatal(err)
		}
		printReport(pl, rep, *verbose)
		finishOutputs(pl, *ipfixOut, *emitP4, metricsFile, *metricsOut)
		return
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		fatal(err)
	}
	if *expvarAddr != "" {
		if err := serveExpvar(*expvarAddr, cfg.Metrics); err != nil {
			fatal(err)
		}
	}
	if *workers > 1 {
		// Cluster mode: one shared steering tier fanning out to N platform
		// workers. Runner.Run buffers the stream itself (recycled vectors),
		// so the raw pcap stream goes in undecorated.
		cl := buildCluster(cfg, *workers, steerPolicy, *detectors)
		if *kvRetention > 0 {
			for _, wpl := range cl.Workers() {
				wpl.KV().SetRetention(*kvRetention)
			}
		}
		crep, err := cl.Run(pcap.ReadStream(r))
		if err != nil {
			fatal(err)
		}
		if err := cl.Close(); err != nil {
			fatal(err)
		}
		printClusterReport(cl, crep, *verbose)
		if skipped := r.Skipped(); skipped > 0 {
			fmt.Fprintf(os.Stderr, "note: %d undecodable frames skipped\n", skipped)
		}
		finishClusterOutputs(cl, crep, *ipfixOut, *emitP4, metricsFile, *metricsOut)
		lingerExpvar(*expvarAddr)
		return
	}

	pl := core.New(cfg)
	if *kvRetention > 0 {
		pl.KV().SetRetention(*kvRetention)
	}

	// Buffered moves pcap decoding to its own goroutine so trace reading
	// overlaps platform replay (order-preserving, batched handoff).
	rep := pl.Run(packet.Buffered(pcap.ReadStream(r), 512))
	if err := pl.Close(); err != nil { // release prep/pool workers before lingering for -expvar
		fatal(err)
	}

	printReport(pl, rep, *verbose)
	if skipped := r.Skipped(); skipped > 0 {
		fmt.Fprintf(os.Stderr, "note: %d undecodable frames skipped\n", skipped)
	}

	finishOutputs(pl, *ipfixOut, *emitP4, metricsFile, *metricsOut)
	lingerExpvar(*expvarAddr)
}

// lingerExpvar keeps the process alive after a batch run so the -expvar
// endpoint stays queryable until interrupted.
func lingerExpvar(addr string) {
	if addr == "" {
		return
	}
	fmt.Fprintf(os.Stderr, "expvar: serving final metrics at http://%s/debug/vars (Ctrl-C to exit)\n", addr)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}

// buildCluster assembles the cluster runner from the single-platform
// config: the template keeps the switch fields (the runner lifts them
// into the shared steering tier) but hands detectors over as a factory —
// each worker needs its own instances.
func buildCluster(cfg core.Config, workers int, policy cluster.SteerPolicy, detectorList string) *cluster.Runner {
	wc := cfg
	wc.Detectors = nil
	return cluster.New(cluster.Config{
		Workers: workers,
		Worker:  wc,
		Detectors: func() []detect.Detector {
			d, err := buildDetectors(detectorList)
			if err != nil {
				fatal(err) // already validated at startup; unreachable
			}
			return d
		},
		Steer:   policy,
		Metrics: cfg.Metrics,
	})
}

// buildSource assembles the daemon's packet source: whole-file pcap,
// growing-pcap tail, or the synthetic generator.
func buildSource(in string, follow bool, gen string, repeat int, rate float64, maxPkts int64) (packet.Source, error) {
	if gen != "" {
		var wl *trace.Workload
		switch gen {
		case "caida2015":
			wl = trace.CAIDA(2015)
		case "caida2016":
			wl = trace.CAIDA(2016)
		case "caida2018":
			wl = trace.CAIDA(2018)
		case "caida2019":
			wl = trace.CAIDA(2019)
		case "dc":
			wl = trace.WisconsinDC()
		default:
			return nil, fmt.Errorf("unknown -gen preset %q", gen)
		}
		return trace.NewSource(trace.SourceConfig{
			Workload: wl.Config(), Repeat: repeat, WallRate: rate, MaxPackets: maxPkts,
		}), nil
	}
	if follow {
		return pcap.FollowFile(in, pcap.FollowConfig{})
	}
	return pcap.OpenFile(in)
}

// printReport renders the end-of-run summary (both batch and daemon
// modes).
func printReport(pl *core.Platform, rep core.Report, verbose bool) {
	printReportCore(pl.Cache().Shard(0).PolicyName(), len(pl.KV().Intervals()), rep, verbose)
}

// printClusterReport renders the merged view plus the cluster fan-out
// line (workers share one policy; flow-log intervals are summed across
// the per-worker KV stores).
func printClusterReport(cl *cluster.Runner, rep cluster.Report, verbose bool) {
	workers := cl.Workers()
	kvIntervals := 0
	for _, wpl := range workers {
		kvIntervals += len(wpl.KV().Intervals())
	}
	printReportCore(workers[0].Cache().Shard(0).PolicyName(), kvIntervals, rep.Merged, verbose)
	fmt.Printf("cluster: workers=%d policy=%s imbalance=%.2f resteers=%d folds=%d folded-events=%d merge=%.2f ms\n",
		len(workers), rep.Steer.Policy, rep.Steer.Imbalance, rep.Steer.Resteers,
		rep.Steer.Folds, rep.Steer.FoldedEvents, float64(rep.MergeNs)/1e6)
	for i, ing := range rep.Ingress {
		fmt.Printf("  worker %d: steered=%d ring-hwm=%d stalls=%d batches=%d\n",
			i, rep.Steer.PerWorker[i], ing.RingHWM, ing.Stalls, ing.Batches)
	}
}

func printReportCore(policy string, kvIntervals int, rep core.Report, verbose bool) {
	fmt.Printf("packets: total=%d forwarded-direct=%d to-snic=%d to-host=%d blocked=%d dropped-at-switch=%d\n",
		rep.Counts.Total, rep.Counts.ForwardedDirect, rep.Counts.ToSNIC,
		rep.Counts.ToHost, rep.Counts.Blocked, rep.Counts.DroppedAtSwitch)
	fmt.Printf("flowcache: policy=%s processed=%d hit-rate=%.3f evictions=%d ring-drops=%d host-punts=%d mode-switchovers=%d\n",
		policy, rep.Cache.Processed(), rep.Cache.HitRate(),
		rep.Cache.Evictions, rep.Cache.RingDrops, rep.Cache.HostPunts, rep.Switchovers)
	fmt.Printf("snic: achieved=%.2f Mpps p50-latency=%.0f ns p99=%.0f ns loss=%.4f\n",
		rep.SNIC.AchievedMpps, rep.SNIC.Latency.Percentile(50), rep.SNIC.Latency.Percentile(99), rep.SNIC.LossRate())
	fmt.Printf("host: cpu=%.2f ms flow-log-intervals=%d\n", rep.HostCPUNs/1e6, kvIntervals)
	if rep.SwitchStats.Intervals > 0 {
		fmt.Printf("switch: steered=%d whitelist-hits=%d blacklist-drops=%d\n",
			rep.SwitchStats.Steered, rep.SwitchStats.WhitelistHits, rep.SwitchStats.BlacklistHits)
	}
	fmt.Printf("alerts: %d\n", len(rep.Alerts))
	byDet := map[string]int{}
	for _, a := range rep.Alerts {
		byDet[a.Detector]++
		if verbose {
			fmt.Println("  ", a)
		}
	}
	for name, n := range byDet {
		fmt.Printf("  %-20s %d\n", name, n)
	}
}

// finishOutputs writes the optional export artifacts and closes the
// metrics file, failing hard on any error so CI catches broken runs.
func finishOutputs(pl *core.Platform, ipfixOut, emitP4 string, metricsFile *os.File, metricsOut string) {
	if ipfixOut != "" {
		out, err := os.Create(ipfixOut)
		if err != nil {
			fatal(err)
		}
		exp := host.NewIPFIXExporter(out, 1)
		if err := exp.ExportKV(pl.KV()); err != nil {
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "flow log exported as IPFIX to %s\n", ipfixOut)
	}
	if emitP4 != "" {
		writeP4(pl.Switch(), emitP4)
	}
	if err := pl.MetricsErr(); err != nil {
		fatal(fmt.Errorf("metrics emit: %w", err))
	}
	if metricsFile != nil {
		if err := metricsFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics snapshots written to %s\n", metricsOut)
	}
}

// finishClusterOutputs is finishOutputs for cluster mode: the IPFIX
// export walks every worker's flow log through one exporter (lane order,
// one template set), -emit-p4 reads the shared switch, and -metrics gets
// a single final merged snapshot — per-interval writers belong to
// individual platforms, which the cluster strips from its workers.
func finishClusterOutputs(cl *cluster.Runner, rep cluster.Report, ipfixOut, emitP4 string, metricsFile *os.File, metricsOut string) {
	if ipfixOut != "" {
		out, err := os.Create(ipfixOut)
		if err != nil {
			fatal(err)
		}
		exp := host.NewIPFIXExporter(out, 1)
		for _, wpl := range cl.Workers() {
			if err := exp.ExportKV(wpl.KV()); err != nil {
				fatal(err)
			}
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "flow log exported as IPFIX to %s\n", ipfixOut)
	}
	if emitP4 != "" {
		writeP4(cl.Switch(), emitP4)
	}
	if rep.Merged.Metrics != nil {
		var w *os.File
		switch {
		case metricsFile != nil:
			w = metricsFile
		case metricsOut == "-":
			w = os.Stdout
		}
		if w != nil {
			if err := json.NewEncoder(w).Encode(rep.Merged.Metrics); err != nil {
				fatal(fmt.Errorf("metrics emit: %w", err))
			}
		}
	}
	if metricsFile != nil {
		if err := metricsFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "final merged metrics snapshot written to %s\n", metricsOut)
	}
}

// writeP4 renders the switch query set plus its end-of-run control-plane
// entries (shared between single-platform and cluster runs).
func writeP4(sw *p4switch.Switch, path string) {
	if sw == nil {
		fatal(fmt.Errorf("-emit-p4 requires -switch"))
	}
	src := sw.EmitP4("smartwatch") + "\n// Control-plane entries at end of run:\n"
	for _, e := range sw.ControlPlaneEntries() {
		src += "// " + e + "\n"
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "P4 program written to %s\n", path)
}

// serveExpvar starts the live metrics endpoint: /debug/vars carries the
// whole registry under the "smartwatch" key (plus the stdlib expvars),
// /metrics serves the latest snapshot as one JSON object, and the blank
// net/http/pprof import wires /debug/pprof. Snapshots are read via the
// registry's lock-free cache, so serving never perturbs the datapath.
func serveExpvar(addr string, reg *obs.Registry) error {
	last := func() any {
		if s := reg.LastSnapshot(); s != nil {
			return s
		}
		return struct{}{} // no interval closed yet
	}
	expvar.Publish("smartwatch", expvar.Func(last))
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(last()) //nolint:errcheck // best-effort HTTP write
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintln(os.Stderr, "smartwatch: expvar server:", err)
		}
	}()
	return nil
}

func buildDetectors(list string) ([]detect.Detector, error) {
	var out []detect.Detector
	for _, name := range strings.Split(list, ",") {
		switch strings.TrimSpace(name) {
		case "":
		case "ssh":
			out = append(out, detect.NewBruteForce(detect.BruteForceConfig{Service: trace.PortSSH}))
		case "ftp":
			out = append(out, detect.NewBruteForce(detect.BruteForceConfig{Service: trace.PortFTP}))
		case "kerberos":
			out = append(out, detect.NewBruteForce(detect.BruteForceConfig{Service: trace.PortKerberos}))
		case "portscan":
			out = append(out, detect.NewPortScan(detect.PortScanConfig{}))
		case "rst":
			out = append(out, detect.NewForgedRST(detect.ForgedRSTConfig{}))
		case "incomplete":
			out = append(out, detect.NewIncomplete(0, 0, nil))
		case "dns":
			out = append(out, detect.NewDNSAmplification(0, 0))
		case "worm":
			out = append(out, detect.NewWorm(0, 0))
		case "ssl":
			out = append(out, detect.NewSSLExpiry(0))
		case "microburst":
			out = append(out, detect.NewMicroburst(0, 0))
		case "lowslow":
			out = append(out, detect.NewLowSlow(detect.LowSlowConfig{}))
		default:
			return nil, fmt.Errorf("unknown detector %q", name)
		}
	}
	return out, nil
}

// defaultQueries is the standing coarse query set the control loop starts
// from when the switch tier is enabled.
func defaultQueries() []p4switch.Query {
	return []p4switch.Query{
		{
			Name:   "ssh-conns",
			Filter: p4switch.Predicate{Proto: packet.ProtoTCP, ServicePort: trace.PortSSH},
			Key:    p4switch.KeyDstIP, PrefixBits: 16,
			Reduce: p4switch.CountSYN, Threshold: 5, Slots: 1 << 12,
		},
		{
			Name:   "syn-fanout",
			Filter: p4switch.Predicate{Proto: packet.ProtoTCP},
			Key:    p4switch.KeyDstIP, PrefixBits: 16,
			Reduce: p4switch.CountSYN, Threshold: 50, Slots: 1 << 12,
		},
		{
			Name:   "rst-burst",
			Filter: p4switch.Predicate{Proto: packet.ProtoTCP},
			Key:    p4switch.KeyDstIP, PrefixBits: 16,
			Reduce: p4switch.CountRST, Threshold: 10, Slots: 1 << 12,
		},
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartwatch:", err)
	os.Exit(1)
}
