// Daemon mode (DESIGN.md §12): -serve turns the batch replayer into a
// long-running service. Packets stream from a packet.Source (whole-file
// pcap, a tailed growing pcap, or the synthetic generator) through a
// core.Session; an HTTP control API layered on the -expvar endpoint gives
// the operator pause/resume, whitelist/blacklist query+update over the
// tier bus, live interval snapshots, and graceful drain. SIGTERM (or
// POST /control/drain) flushes the flow log, emits the final metrics
// snapshot, and exits cleanly.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"smartwatch/internal/cluster"
	"smartwatch/internal/core"
	"smartwatch/internal/packet"
	"smartwatch/internal/tier"
)

// daemon owns the serve-mode lifecycle: one source, one engine (a
// single-platform session or a cluster runner — exactly one of ses/cl is
// set), the pause gate and the drain protocol.
type daemon struct {
	pl  *core.Platform
	ses *core.Session
	cl  *cluster.Runner
	src packet.Source

	chunk int

	pauseMu sync.Mutex
	pauseC  *sync.Cond
	paused  bool

	ingestDone chan struct{}
	ingestErr  error

	drainOnce sync.Once
	drained   chan struct{}
	rep       core.Report
	clRep     cluster.Report
	drainErr  error
}

func newDaemon(pl *core.Platform, src packet.Source, chunk int) *daemon {
	d := &daemon{
		pl: pl, src: src, chunk: chunk,
		ingestDone: make(chan struct{}),
		drained:    make(chan struct{}),
	}
	d.pauseC = sync.NewCond(&d.pauseMu)
	d.ses = pl.NewSession()
	return d
}

// newClusterDaemon is the -workers > 1 variant: same lifecycle, with the
// cluster runner standing in for the session.
func newClusterDaemon(cl *cluster.Runner, src packet.Source, chunk int) *daemon {
	d := &daemon{
		cl: cl, src: src, chunk: chunk,
		ingestDone: make(chan struct{}),
		drained:    make(chan struct{}),
	}
	d.pauseC = sync.NewCond(&d.pauseMu)
	return d
}

// run starts the session and ingest loop, blocks until a drain completes
// (SIGTERM, /control/drain, or source exhaustion), and returns the final
// report.
func (d *daemon) run() (core.Report, error) {
	var err error
	if d.cl != nil {
		err = d.cl.Start()
	} else {
		err = d.ses.Start()
	}
	if err != nil {
		return core.Report{}, err
	}
	go d.ingestLoop()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "smartwatch: %v — draining\n", s)
		d.drain()
	}()

	// Source exhaustion (file fully replayed, generator budget done) also
	// ends the daemon — after the ingest loop finishes, drain.
	go func() {
		<-d.ingestDone
		d.drain()
	}()

	<-d.drained
	signal.Stop(sig)
	if d.drainErr != nil {
		return core.Report{}, d.drainErr
	}
	if d.ingestErr != nil {
		return d.rep, d.ingestErr
	}
	return d.rep, d.src.Err()
}

// ingestLoop pulls batches from the source and feeds the session,
// honouring the pause gate between batches. Pausing simply stops the
// pull: backpressure propagates through BufferedBatches to the source.
func (d *daemon) ingestLoop() {
	defer close(d.ingestDone)
	for b := range packet.BufferedBatches(d.src.Stream(), d.chunk) {
		d.pauseMu.Lock()
		for d.paused {
			d.pauseC.Wait()
		}
		d.pauseMu.Unlock()
		if err := d.ingest(b); err != nil {
			// A drain that started while we were pulling the next batch
			// closes the engine under us — that's the clean-shutdown path,
			// not an error.
			if err != core.ErrSessionClosed && err != cluster.ErrRunnerState {
				d.ingestErr = err
			}
			return
		}
	}
}

func (d *daemon) ingest(b []packet.Packet) error {
	if d.cl != nil {
		return d.cl.Ingest(b)
	}
	return d.ses.Ingest(b)
}

// drain runs the graceful-shutdown protocol exactly once: stop the
// source, release the pause gate, wait for the ingest loop, then drain
// the session (final interval close, lossless flow-log flush, final
// metrics emit).
func (d *daemon) drain() {
	d.drainOnce.Do(func() {
		d.src.Close()
		d.setPaused(false)
		<-d.ingestDone
		if d.cl != nil {
			d.clRep, d.drainErr = d.cl.Drain()
			d.rep = d.clRep.Merged
			// Runner.Drain already tears the feeders and worker sessions
			// down; Close is the idempotent backstop (and the only teardown
			// path if the drain itself failed).
			if err := d.cl.Close(); err != nil && d.drainErr == nil {
				d.drainErr = err
			}
		} else {
			d.rep, d.drainErr = d.ses.Drain()
			// The session is done: release the platform's persistent workers
			// (prep goroutine, flowcache shard pool) so the drained daemon
			// holds no background goroutines while it lingers for reporting.
			if err := d.pl.Close(); err != nil && d.drainErr == nil {
				d.drainErr = err
			}
		}
		close(d.drained)
	})
}

func (d *daemon) setPaused(p bool) {
	d.pauseMu.Lock()
	d.paused = p
	d.pauseMu.Unlock()
	d.pauseC.Broadcast()
}

func (d *daemon) isPaused() bool {
	d.pauseMu.Lock()
	defer d.pauseMu.Unlock()
	return d.paused
}

// registerControlAPI mounts the operator routes on the default mux (the
// same server -expvar starts).
func (d *daemon) registerControlAPI() {
	http.HandleFunc("/control/status", d.handleStatus)
	http.HandleFunc("/control/pause", d.handlePause(true))
	http.HandleFunc("/control/resume", d.handlePause(false))
	http.HandleFunc("/control/snapshot", d.handleSnapshot)
	http.HandleFunc("/control/whitelist", d.handleWhitelist)
	http.HandleFunc("/control/blacklist", d.handleBlacklist)
	http.HandleFunc("/control/drain", d.handleDrain)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort HTTP write
}

func (d *daemon) handleStatus(w http.ResponseWriter, _ *http.Request) {
	if d.cl != nil {
		status := map[string]any{
			"state":    d.cl.State().String(),
			"paused":   d.isPaused(),
			"ingested": d.cl.Ingested(),
			"bus":      d.cl.BusStats(),
			"workers":  len(d.cl.Workers()),
		}
		var maxSeq uint64
		var maxTs int64
		for _, snap := range d.cl.Snapshots() {
			if snap != nil && snap.Seq > maxSeq {
				maxSeq, maxTs = snap.Seq, snap.TsNs
			}
		}
		if maxSeq > 0 {
			status["intervals"] = maxSeq
			status["ts_ns"] = maxTs
		}
		writeJSON(w, http.StatusOK, status)
		return
	}
	status := map[string]any{
		"state":    d.ses.State().String(),
		"paused":   d.isPaused(),
		"ingested": d.ses.Ingested(),
		"bus":      d.pl.Bus().Stats(),
	}
	if snap := d.ses.Snapshot(); snap != nil {
		status["intervals"] = snap.Seq
		status["ts_ns"] = snap.TsNs
	}
	writeJSON(w, http.StatusOK, status)
}

func (d *daemon) handlePause(pause bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
			return
		}
		d.setPaused(pause)
		writeJSON(w, http.StatusOK, map[string]any{"paused": pause})
	}
}

// handleSnapshot serves the latest interval-boundary delta snapshot
// (per-lane array in cluster mode; lanes that haven't closed an interval
// yet are null).
func (d *daemon) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	if d.cl != nil {
		writeJSON(w, http.StatusOK, map[string]any{"workers": d.cl.Snapshots()})
		return
	}
	snap := d.ses.Snapshot()
	if snap == nil {
		writeJSON(w, http.StatusOK, map[string]string{"status": "no interval closed yet"})
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleWhitelist: GET dumps the switch whitelist; POST ?flow=<spec>
// publishes a WhitelistEvent on the tier bus from inside the session's
// safe point — the switch programs the entry and the FlowCache releases
// any pin, exactly as a detector-raised whitelist would.
func (d *daemon) handleWhitelist(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		var entries []string
		if d.cl != nil {
			for _, k := range d.cl.WhitelistEntries() {
				entries = append(entries, k.String())
			}
		} else {
			err := d.ses.Exec(func(pl *core.Platform) {
				if sw := pl.Switch(); sw != nil {
					for _, k := range sw.WhitelistEntries() {
						entries = append(entries, k.String())
					}
				}
			})
			if err != nil {
				writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
				return
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"count": len(entries), "entries": entries})
	case http.MethodPost:
		k, err := parseFlowSpec(r.URL.Query().Get("flow"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if d.cl != nil {
			err = d.cl.Whitelist(k)
		} else {
			err = d.ses.Exec(func(pl *core.Platform) {
				pl.Bus().Publish(tier.WhitelistEvent{Key: k, Origin: "control-api"})
			})
		}
		if err != nil {
			writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"whitelisted": k.String()})
	default:
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET or POST"})
	}
}

// handleBlacklist: GET dumps the drop table; POST ?addr=a.b.c.d publishes
// a BlacklistEvent on the tier bus.
func (d *daemon) handleBlacklist(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		var entries []string
		if d.cl != nil {
			for _, a := range d.cl.BlacklistEntries() {
				entries = append(entries, a.String())
			}
		} else {
			err := d.ses.Exec(func(pl *core.Platform) {
				if sw := pl.Switch(); sw != nil {
					for _, a := range sw.BlacklistEntries() {
						entries = append(entries, a.String())
					}
				}
			})
			if err != nil {
				writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
				return
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"count": len(entries), "entries": entries})
	case http.MethodPost:
		a, err := packet.ParseAddr(r.URL.Query().Get("addr"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if d.cl != nil {
			err = d.cl.Blacklist(a)
		} else {
			err = d.ses.Exec(func(pl *core.Platform) {
				pl.Bus().Publish(tier.BlacklistEvent{Addr: a, Origin: "control-api"})
			})
		}
		if err != nil {
			writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"blacklisted": a.String()})
	default:
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET or POST"})
	}
}

// handleDrain triggers graceful shutdown and reports when the final
// report is ready.
func (d *daemon) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
		return
	}
	go d.drain()
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "draining"})
}

// parseFlowSpec parses "ip:port-ip:port/proto" (e.g.
// "10.0.0.1:2000-10.0.0.2:80/tcp") into a canonical FlowKey.
func parseFlowSpec(s string) (packet.FlowKey, error) {
	var k packet.FlowKey
	spec, protoName, ok := strings.Cut(s, "/")
	if !ok {
		return k, fmt.Errorf("flow spec %q: want ip:port-ip:port/proto", s)
	}
	var proto packet.Proto
	switch protoName {
	case "tcp":
		proto = packet.ProtoTCP
	case "udp":
		proto = packet.ProtoUDP
	case "icmp":
		proto = packet.ProtoICMP
	default:
		return k, fmt.Errorf("flow spec %q: unknown proto %q", s, protoName)
	}
	a, b, ok := strings.Cut(spec, "-")
	if !ok {
		return k, fmt.Errorf("flow spec %q: want two ip:port endpoints", s)
	}
	t := packet.FiveTuple{Proto: proto}
	var err error
	if t.SrcIP, t.SrcPort, err = parseEndpoint(a); err != nil {
		return k, fmt.Errorf("flow spec %q: %w", s, err)
	}
	if t.DstIP, t.DstPort, err = parseEndpoint(b); err != nil {
		return k, fmt.Errorf("flow spec %q: %w", s, err)
	}
	return t.Canonical(), nil
}

func parseEndpoint(s string) (packet.Addr, uint16, error) {
	ipStr, portStr, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("endpoint %q: want ip:port", s)
	}
	ip, err := packet.ParseAddr(ipStr)
	if err != nil {
		return 0, 0, err
	}
	var port int
	if _, err := fmt.Sscanf(portStr, "%d", &port); err != nil || port < 0 || port > 65535 {
		return 0, 0, fmt.Errorf("endpoint %q: bad port", s)
	}
	return ip, uint16(port), nil
}
