// Command metricscheck validates a JSON-lines metrics stream produced by
// `smartwatch -metrics` (the internal/obs snapshot format). It is the CI
// smoke gate for the observability layer: it proves snapshots parse, that
// virtual time and counters are monotonic across intervals, and that the
// series an operator would alert on actually carry data.
//
// Input is read from stdin or a file argument. Lines that do not start
// with '{' are skipped, so `smartwatch -metrics - | metricscheck` works
// even though the final report shares stdout with the snapshot stream.
//
// Usage:
//
//	smartwatch -in mix.pcap -switch -metrics - | metricscheck \
//	    -require packets.total,flowcache.occupancy,snic.processed
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"smartwatch/internal/obs"
)

func main() {
	require := flag.String("require", "packets.total",
		"comma-separated series that must be non-zero in the final snapshot")
	minSnapshots := flag.Int("min-snapshots", 1, "minimum number of snapshot lines expected")
	flag.Parse()

	in := io.Reader(os.Stdin)
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	snaps, skipped, err := parseStream(in)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	if len(snaps) < *minSnapshots {
		fatal(fmt.Errorf("%s: %d snapshot lines, want >= %d", name, len(snaps), *minSnapshots))
	}
	if err := checkMonotonic(snaps); err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	final := snaps[len(snaps)-1]
	for _, series := range strings.Split(*require, ",") {
		series = strings.TrimSpace(series)
		if series == "" {
			continue
		}
		if err := checkNonZero(final, series); err != nil {
			fatal(fmt.Errorf("%s: final snapshot: %w", name, err))
		}
	}
	fmt.Fprintf(os.Stderr, "metricscheck: ok — %d snapshots, %d series, %d non-snapshot lines skipped\n",
		len(snaps), len(final.Counters)+len(final.Gauges)+len(final.Histograms), skipped)
}

// parseStream decodes every snapshot line, counting skipped non-JSON
// lines. A line that looks like JSON but fails to decode is an error.
func parseStream(in io.Reader) (snaps []*obs.Snapshot, skipped int, err error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "{") {
			if line != "" {
				skipped++
			}
			continue
		}
		s, err := obs.DecodeSnapshot([]byte(line))
		if err != nil {
			return nil, 0, fmt.Errorf("line %d: %w", lineNo, err)
		}
		snaps = append(snaps, s)
	}
	return snaps, skipped, sc.Err()
}

// checkMonotonic enforces the snapshot-stream invariants: virtual time
// strictly increases, and every counter is non-decreasing (counters are
// cumulative; a decrease means double-registration or a reset bug).
func checkMonotonic(snaps []*obs.Snapshot) error {
	for i := 1; i < len(snaps); i++ {
		prev, cur := snaps[i-1], snaps[i]
		if cur.TsNs <= prev.TsNs {
			return fmt.Errorf("snapshot %d: ts_ns %d <= previous %d", i, cur.TsNs, prev.TsNs)
		}
		for name, v := range prev.Counters {
			if nv, ok := cur.Counters[name]; ok && nv < v {
				return fmt.Errorf("snapshot %d: counter %s decreased %d -> %d", i, name, v, nv)
			}
		}
	}
	return nil
}

// checkNonZero asserts the named series exists and carries a non-zero
// value in the snapshot (counter, gauge, or histogram count).
func checkNonZero(s *obs.Snapshot, series string) error {
	if v, ok := s.Counters[series]; ok {
		if v == 0 {
			return fmt.Errorf("counter %s is zero", series)
		}
		return nil
	}
	if v, ok := s.Gauges[series]; ok {
		if v == 0 {
			return fmt.Errorf("gauge %s is zero", series)
		}
		return nil
	}
	if h, ok := s.Histograms[series]; ok {
		if h.Count == 0 {
			return fmt.Errorf("histogram %s is empty", series)
		}
		return nil
	}
	return fmt.Errorf("series %s absent (have %d counters, %d gauges, %d histograms)",
		series, len(s.Counters), len(s.Gauges), len(s.Histograms))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metricscheck:", err)
	os.Exit(1)
}
