// Command bench measures the repository's performance-critical paths and
// emits a machine-readable BENCH_*.json snapshot, so successive PRs can
// track the trajectory (BENCH_1.json, BENCH_2.json, ...).
//
// It measures two layers:
//
//   - micro: the FlowCache Process hot path, the sNIC dispatch loop, the
//     buffered stream bridge, the sharded FlowCache datapath (sequential
//     vs pooled workers vs spawn-per-call fan-out, 64k packets per op)
//     end-to-end session ingest (sequential vs pipelined drive), the
//     cluster steering decision and the cluster drive at 1/2/4 workers,
//     via testing.Benchmark (ns/op, allocs/op); micros whose parallelism
//     cannot exist on the current box (pipelined ingest, multi-worker
//     cluster drives on GOMAXPROCS=1) are skipped and noted rather than
//     measured as noise;
//   - macro: wall-clock for the full `experiments all` sweep at a small
//     scale, sequential vs parallel, plus the resulting speedup.
//
// A prior snapshot can be diffed against the fresh run with -compare:
// per-micro ns/op and allocs/op deltas print benchstat-style, and the
// process exits non-zero when any micro regressed by more than
// -tolerance (fractional; the CI smoke treats this as report-only — the
// shared 1-core box is too noisy to gate on).
//
// Usage:
//
//	bench [-out BENCH_1.json] [-scale 0.01] [-note "..."] [-skip-macro]
//	      [-compare BENCH_2.json] [-tolerance 0.10]
//	      [-cpuprofile prof/bench.cpu] [-memprofile prof/bench.mem]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"smartwatch/internal/cluster"
	"smartwatch/internal/core"
	"smartwatch/internal/detect"
	"smartwatch/internal/experiments"
	"smartwatch/internal/flowcache"
	"smartwatch/internal/packet"
	"smartwatch/internal/snic"
	"smartwatch/internal/stats"
	"smartwatch/internal/trace"
)

// Micro is one testing.Benchmark result.
type Micro struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"iterations"`
}

// Macro is the experiments-sweep wall-clock measurement.
type Macro struct {
	Scale       float64 `json:"scale"`
	Experiments int     `json:"experiments"`
	SequentialS float64 `json:"sequential_s"`
	ParallelS   float64 `json:"parallel_s"`
	Parallel    int     `json:"parallel"`
	Speedup     float64 `json:"speedup"`
}

// Snapshot is the emitted document.
type Snapshot struct {
	Generated  string           `json:"generated"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Micro      map[string]Micro `json:"micro"`
	Macro      *Macro           `json:"macro,omitempty"`
	Notes      []string         `json:"notes,omitempty"`
}

type noteList []string

func (n *noteList) String() string     { return fmt.Sprint(*n) }
func (n *noteList) Set(s string) error { *n = append(*n, s); return nil }

func benchPackets(n int) []packet.Packet {
	rng := stats.NewRand(42)
	z := stats.NewZipf(rng, 1<<14, 1.2)
	pkts := make([]packet.Packet, n)
	for i := range pkts {
		fl := z.Sample()
		pkts[i] = packet.Packet{
			Ts: int64(i),
			Tuple: packet.FiveTuple{
				SrcIP: packet.Addr(fl*2654435761 + 17), DstIP: packet.Addr(fl + 3),
				SrcPort: uint16(fl), DstPort: 443, Proto: packet.ProtoTCP,
			},
			Size: 64,
		}
	}
	return pkts
}

func toMicro(r testing.BenchmarkResult) Micro {
	return Micro{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		N:           r.N,
	}
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	scale := flag.Float64("scale", 0.01, "workload scale for the macro sweep")
	skipMacro := flag.Bool("skip-macro", false, "skip the experiments wall-clock sweep")
	comparePath := flag.String("compare", "", "prior BENCH_*.json to diff against (benchstat-style deltas)")
	tolerance := flag.Float64("tolerance", 0.10, "fractional ns/op regression -compare tolerates before exiting non-zero")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the micro benchmarks to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	var notes noteList
	flag.Var(&notes, "note", "free-form note recorded in the snapshot (repeatable)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
			}
		}()
	}

	snap := Snapshot{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Micro:      map[string]Micro{},
		Notes:      notes,
	}

	pkts := benchPackets(1 << 16)

	fmt.Fprintln(os.Stderr, "bench: flowcache.Process ...")
	cache := flowcache.New(flowcache.DefaultConfig(10))
	snap.Micro["flowcache_process"] = toMicro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cache.Process(&pkts[i&(len(pkts)-1)])
		}
	}))

	fmt.Fprintln(os.Stderr, "bench: flowcache.ProcessBatch (vectors of 64) ...")
	cacheBatch := flowcache.New(flowcache.DefaultConfig(10))
	snap.Micro["flowcache_process_batch64"] = toMicro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		// One op is one packet (comparable to flowcache_process); the
		// cache sees them in vectors of 64.
		for i := 0; i < b.N; {
			off := i & (len(pkts) - 1)
			n := 64
			if off+n > len(pkts) {
				n = len(pkts) - off
			}
			if i+n > b.N {
				n = b.N - i
			}
			cacheBatch.ProcessBatch(pkts[off : off+n])
			i += n
		}
	}))

	// Per-policy hot path: same vectored drive as flowcache_process_batch64
	// (which measures the default lru-lpc), one micro per alternative
	// policy, so -compare catches a regression in any replacement path.
	for _, policy := range []string{flowcache.PolicyNameLRU, flowcache.PolicyNameS3FIFO} {
		policy := policy
		fmt.Fprintf(os.Stderr, "bench: flowcache.ProcessBatch, policy=%s ...\n", policy)
		pcfg := flowcache.DefaultConfig(10)
		pcfg.Policy = policy
		pc := flowcache.New(pcfg)
		snap.Micro["flowcache_process_batch64_"+policy] = toMicro(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; {
				off := i & (len(pkts) - 1)
				n := 64
				if off+n > len(pkts) {
					n = len(pkts) - off
				}
				if i+n > b.N {
					n = b.N - i
				}
				pc.ProcessBatch(pkts[off : off+n])
				i += n
			}
		}))
	}

	// Adaptive controller overhead: the full Observe+Process step with the
	// feedback loop live, against the same packet mix.
	fmt.Fprintln(os.Stderr, "bench: flowcache adaptive observe+process ...")
	acfg := flowcache.DefaultControllerConfig()
	acfg.Adaptive.Enabled = true
	ash := flowcache.NewSharded(1, flowcache.DefaultConfig(10), acfg)
	snap.Micro["flowcache_adaptive_observe_process"] = toMicro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ash.ObserveProcess(&pkts[i&(len(pkts)-1)])
		}
	}))

	// LowSlow detector hot path: per-SYN wheel Schedule plus the Advance
	// cadence over a connection-accretion trace — the timing-wheel cost a
	// deployment pays for idle-deadline tracking (ISSUE 10). One op is one
	// packet, including its share of Tick work.
	fmt.Fprintln(os.Stderr, "bench: lowslow detector wheel hot path ...")
	lsPkts := packet.Collect(trace.ConnExhaust(trace.ConnExhaustConfig{
		Seed: 9, Connections: 8192, ConnGap: 50_000,
	}).Stream())
	lsDet := detect.NewLowSlow(detect.LowSlowConfig{})
	lsCache := flowcache.New(flowcache.DefaultConfig(10))
	lsNext, lsBase := int64(0), int64(0)
	lsSpan := lsPkts[len(lsPkts)-1].Ts + 1
	snap.Micro["detect_lowslow_wheel"] = toMicro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := i % len(lsPkts)
			if j == 0 && i > 0 {
				lsBase += lsSpan // keep virtual time monotonic across passes
			}
			p := lsPkts[j]
			p.Ts += lsBase
			for p.Ts >= lsNext {
				lsDet.Tick(lsNext)
				lsNext += 10e6
			}
			rec, _ := lsCache.Process(&p)
			lsDet.OnPacket(&p, rec, snic.Ctx{})
		}
	}))

	fmt.Fprintln(os.Stderr, "bench: snic dispatch loop ...")
	snap.Micro["snic_dispatch"] = toMicro(testing.Benchmark(func(b *testing.B) {
		eng := snic.New(snic.DefaultConfig(), func(p *packet.Packet, ctx snic.Ctx) snic.Cost {
			return snic.Cost{Reads: 4, Writes: 1}
		})
		b.ReportAllocs()
		b.ResetTimer()
		eng.Run(func(yield func(packet.Packet) bool) {
			for i := 0; i < b.N; i++ {
				p := pkts[i&(len(pkts)-1)]
				p.Ts = int64(i * 30)
				if !yield(p) {
					return
				}
			}
		})
	}))

	fmt.Fprintln(os.Stderr, "bench: buffered stream bridge ...")
	snap.Micro["packet_buffered"] = toMicro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		src := func(yield func(packet.Packet) bool) {
			for i := 0; i < b.N; i++ {
				if !yield(pkts[i&(len(pkts)-1)]) {
					return
				}
			}
		}
		n := 0
		for range packet.Buffered(src, 512) {
			n++
		}
	}))

	// Sharded datapath: one op is the whole 64k-packet slice, so the
	// shards=1 and shards=4 numbers divide directly into per-packet cost
	// and unsharded-vs-sharded throughput.
	fmt.Fprintln(os.Stderr, "bench: sharded flowcache, shards=1 sequential (64k pkts/op) ...")
	sh1 := flowcache.NewSharded(1, flowcache.DefaultConfig(10), flowcache.ControllerConfig{})
	snap.Micro["flowcache_sharded1_64k"] = toMicro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range pkts {
				sh1.ObserveProcess(&pkts[j])
			}
		}
	}))

	fmt.Fprintln(os.Stderr, "bench: sharded flowcache, shards=4 parallel workers (64k pkts/op) ...")
	sh4 := flowcache.NewSharded(4, flowcache.DefaultConfig(10), flowcache.ControllerConfig{})
	snap.Micro["flowcache_sharded4_parallel_64k"] = toMicro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sh4.RunParallel(pkts, 256)
		}
	}))

	fmt.Fprintln(os.Stderr, "bench: sharded flowcache, shards=4 batched fan-out (64k pkts/op) ...")
	sh4b := flowcache.NewSharded(4, flowcache.DefaultConfig(10), flowcache.ControllerConfig{})
	snap.Micro["flowcache_sharded4_batch256_64k"] = toMicro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sh4b.RunParallelBatches(pkts, 256)
		}
	}))

	// Pool A/B: the same fan-out with goroutines/channels/buffers created
	// per call (the pre-pool implementation). The delta against
	// flowcache_sharded4_batch256_64k is the persistent worker pool's win.
	fmt.Fprintln(os.Stderr, "bench: sharded flowcache, shards=4 spawn-per-call fan-out (64k pkts/op) ...")
	sh4s := flowcache.NewSharded(4, flowcache.DefaultConfig(10), flowcache.ControllerConfig{})
	snap.Micro["flowcache_sharded4_spawn256_64k"] = toMicro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sh4s.RunParallelBatchesSpawn(pkts, 256)
		}
	}))

	// End-to-end session ingest: one op pushes the whole 64k-packet slice
	// through a live session in 512-packet vectors on the batched drive
	// (sharded platform), sequential vs pipelined. The session — and so the
	// prep worker and any pool goroutines — persists across ops, measuring
	// the steady state the -serve daemon runs in.
	multiCore := runtime.GOMAXPROCS(0) >= 2
	for _, sc := range []struct {
		name      string
		pipelined bool
	}{
		{"session_ingest_64k", false},
		{"session_ingest_pipelined_64k", true},
	} {
		if sc.pipelined && !multiCore {
			// The pipelined drive needs a second core for the prep worker to
			// overlap with; on one core the micro only measures scheduler
			// churn and poisons -compare across box sizes.
			snap.Notes = append(snap.Notes, sc.name+" skipped: GOMAXPROCS=1, no prep/stateful overlap possible")
			fmt.Fprintf(os.Stderr, "bench: %s skipped (GOMAXPROCS=1)\n", sc.name)
			continue
		}
		fmt.Fprintf(os.Stderr, "bench: session ingest, pipelined=%v (64k pkts/op, batch=64) ...\n", sc.pipelined)
		spkts := append([]packet.Packet(nil), pkts...)
		pl := core.New(core.Config{IntervalNs: 100e6, Shards: 4, BatchSize: 64, Pipelined: sc.pipelined})
		ses := pl.NewSession()
		if err := ses.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		snap.Micro[sc.name] = toMicro(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				span := int64(len(spkts))
				for j := range spkts {
					spkts[j].Ts += span // keep virtual time monotonic across ops
				}
				for lo := 0; lo < len(spkts); lo += 512 {
					hi := min(lo+512, len(spkts))
					if err := ses.Ingest(spkts[lo:hi]); err != nil {
						b.Fatal(err)
					}
				}
			}
		}))
		if _, err := ses.Drain(); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := ses.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	// Steering decision in isolation: canonical flow key + hash + top-bits
	// worker pick — the per-packet cost the shared tier adds before any
	// queueing. The sink defeats dead-code elimination.
	fmt.Fprintln(os.Stderr, "bench: cluster steer hash ...")
	var steerSink uint64
	snap.Micro["cluster_steer_hash"] = toMicro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := &pkts[i&(len(pkts)-1)]
			steerSink += p.Key().Hash() >> 62 // 4-worker shift
		}
	}))
	if steerSink == ^uint64(0) {
		fmt.Fprintln(os.Stderr, "bench: impossible steer sink")
	}

	// Cluster drive: one op pushes the 64k slice through a live cluster
	// runner in 512-packet vectors; the runner (feeders, rings, recycled
	// buffers) persists across ops, so the number is the steady-state
	// fan-out cost. w1 is the ring+feeder overhead over a plain session;
	// w2/w4 divide into the parallel speedup (skipped on a single-core box,
	// where no worker overlap is possible).
	for _, w := range []int{1, 2, 4} {
		name := fmt.Sprintf("cluster_drive_64k_w%d", w)
		if w > 1 && !multiCore {
			snap.Notes = append(snap.Notes, name+" skipped: GOMAXPROCS=1, no worker overlap possible")
			fmt.Fprintf(os.Stderr, "bench: %s skipped (GOMAXPROCS=1)\n", name)
			continue
		}
		fmt.Fprintf(os.Stderr, "bench: cluster drive, workers=%d (64k pkts/op, batch=64) ...\n", w)
		spkts := append([]packet.Packet(nil), pkts...)
		wc := core.Config{IntervalNs: 100e6, BatchSize: 64}
		wc.Cache = flowcache.DefaultConfig(12) // rows split W ways, total capacity constant
		cl := cluster.New(cluster.Config{Workers: w, Worker: wc})
		if err := cl.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		snap.Micro[name] = toMicro(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				span := int64(len(spkts))
				for j := range spkts {
					spkts[j].Ts += span // keep virtual time monotonic across ops
				}
				for lo := 0; lo < len(spkts); lo += 512 {
					hi := min(lo+512, len(spkts))
					if err := cl.Ingest(spkts[lo:hi]); err != nil {
						b.Fatal(err)
					}
				}
			}
		}))
		if _, err := cl.Drain(); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := cl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	if !*skipMacro {
		reg := experiments.Registry()
		sweep := func(parallel int) float64 {
			start := time.Now()
			experiments.RunAll(reg, *scale, parallel, func(r experiments.Result) {
				if r.Table == nil {
					fmt.Fprintf(os.Stderr, "bench: %s returned nil table\n", r.ID)
					os.Exit(1)
				}
			})
			return time.Since(start).Seconds()
		}
		fmt.Fprintf(os.Stderr, "bench: experiments all, scale %g, sequential ...\n", *scale)
		seq := sweep(1)
		par := runtime.GOMAXPROCS(0)
		fmt.Fprintf(os.Stderr, "bench: experiments all, scale %g, -parallel=%d ...\n", *scale, par)
		parS := sweep(par)
		m := Macro{Scale: *scale, Experiments: len(reg), SequentialS: seq, ParallelS: parS, Parallel: par}
		if parS > 0 {
			m.Speedup = seq / parS
		}
		snap.Macro = &m
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *out)
	}

	if *comparePath != "" {
		worst, compared, err := compare(*comparePath, &snap)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if compared == 0 {
			fmt.Fprintln(os.Stderr, "bench: no comparable micros between snapshots; nothing to gate on")
		}
		if compared > 0 && worst > *tolerance {
			fmt.Fprintf(os.Stderr, "bench: worst regression %+.1f%% exceeds tolerance %.1f%%\n",
				worst*100, *tolerance*100)
			if *cpuprofile != "" {
				pprof.StopCPUProfile() // os.Exit skips the deferred stop
			}
			os.Exit(2)
		}
	}
}
