package main

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func snap(micros map[string]Micro) *Snapshot {
	return &Snapshot{Micro: micros}
}

func TestCompareSnapshots(t *testing.T) {
	for _, tc := range []struct {
		name         string
		old, fresh   map[string]Micro
		wantWorst    float64
		wantCompared int
		wantContains []string
		wantAbsent   []string
	}{
		{
			name:         "regression and improvement",
			old:          map[string]Micro{"a": {NsPerOp: 100}, "b": {NsPerOp: 200}},
			fresh:        map[string]Micro{"a": {NsPerOp: 150}, "b": {NsPerOp: 100}},
			wantWorst:    0.5,
			wantCompared: 2,
			wantContains: []string{"+50.0%", "-50.0%"},
		},
		{
			name:         "all improved yields negative worst",
			old:          map[string]Micro{"a": {NsPerOp: 100}},
			fresh:        map[string]Micro{"a": {NsPerOp: 80}},
			wantWorst:    -0.2,
			wantCompared: 1,
		},
		{
			name:         "disjoint sets gate on nothing",
			old:          map[string]Micro{"legacy": {NsPerOp: 100}},
			fresh:        map[string]Micro{"modern": {NsPerOp: 900}},
			wantWorst:    0,
			wantCompared: 0,
			wantContains: []string{"new", "vanished", "legacy", "modern"},
		},
		{
			name:         "zero baseline is n/a not Inf",
			old:          map[string]Micro{"a": {NsPerOp: 0}, "b": {NsPerOp: 100}},
			fresh:        map[string]Micro{"a": {NsPerOp: 50}, "b": {NsPerOp: 101}},
			wantWorst:    0.01,
			wantCompared: 1,
			wantContains: []string{"n/a"},
		},
		{
			name:         "all baselines zero",
			old:          map[string]Micro{"a": {NsPerOp: 0}},
			fresh:        map[string]Micro{"a": {NsPerOp: 50}},
			wantWorst:    0,
			wantCompared: 0,
			wantContains: []string{"n/a"},
		},
		{
			name:         "non-finite values never propagate",
			old:          map[string]Micro{"a": {NsPerOp: math.Inf(1)}, "b": {NsPerOp: math.NaN()}, "c": {NsPerOp: 10}},
			fresh:        map[string]Micro{"a": {NsPerOp: 5}, "b": {NsPerOp: 5}, "c": {NsPerOp: math.Inf(1)}},
			wantWorst:    0,
			wantCompared: 0,
		},
		{
			name:         "empty old snapshot",
			old:          map[string]Micro{},
			fresh:        map[string]Micro{"a": {NsPerOp: 10}},
			wantWorst:    0,
			wantCompared: 0,
			wantContains: []string{"new"},
		},
		{
			name:         "empty fresh snapshot",
			old:          map[string]Micro{"a": {NsPerOp: 10}},
			fresh:        map[string]Micro{},
			wantWorst:    0,
			wantCompared: 0,
			wantContains: []string{"vanished"},
		},
		{
			name:         "alloc change annotated",
			old:          map[string]Micro{"a": {NsPerOp: 100, AllocsPerOp: 2}},
			fresh:        map[string]Micro{"a": {NsPerOp: 100, AllocsPerOp: 0}},
			wantWorst:    0,
			wantCompared: 1,
			wantContains: []string{"2->0"},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			worst, compared := compareSnapshots(&buf, snap(tc.old), snap(tc.fresh))
			if math.IsNaN(worst) || math.IsInf(worst, 0) {
				t.Fatalf("worst is not finite: %v", worst)
			}
			if math.Abs(worst-tc.wantWorst) > 1e-9 {
				t.Errorf("worst = %v, want %v", worst, tc.wantWorst)
			}
			if compared != tc.wantCompared {
				t.Errorf("compared = %d, want %d", compared, tc.wantCompared)
			}
			out := buf.String()
			for _, want := range tc.wantContains {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
			for _, bad := range append(tc.wantAbsent, "NaN", "Inf") {
				if strings.Contains(out, bad) {
					t.Errorf("output contains forbidden %q:\n%s", bad, out)
				}
			}
		})
	}
}

// TestCompareVanishedSorted: the vanished block must print in sorted
// order, not map-iteration order.
func TestCompareVanishedSorted(t *testing.T) {
	old := map[string]Micro{"zeta": {NsPerOp: 1}, "alpha": {NsPerOp: 2}, "mid": {NsPerOp: 3}}
	var buf bytes.Buffer
	compareSnapshots(&buf, snap(old), snap(nil))
	out := buf.String()
	za, aa, ma := strings.Index(out, "zeta"), strings.Index(out, "alpha"), strings.Index(out, "mid")
	if aa < 0 || ma < 0 || za < 0 || !(aa < ma && ma < za) {
		t.Errorf("vanished rows not sorted (alpha@%d mid@%d zeta@%d):\n%s", aa, ma, za, out)
	}
}
