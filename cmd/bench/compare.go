package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// compareSnapshots prints a benchstat-style delta table between an old
// snapshot and a fresh one and returns the worst fractional ns/op
// regression across micros with a usable baseline, plus how many such
// pairs were compared. With zero comparable pairs (disjoint snapshots)
// worst is 0 and the caller must not gate on it.
//
// Edge cases are explicit, never arithmetic: a micro only in the fresh
// snapshot prints a "new" marker, one only in the old snapshot prints
// "vanished" (sorted, so output is stable), and a zero/negative or
// non-finite baseline prints "n/a" instead of dividing into NaN/Inf.
// The returned worst is always finite.
func compareSnapshots(w io.Writer, old, fresh *Snapshot) (worst float64, compared int) {
	names := make([]string, 0, len(fresh.Micro))
	for name := range fresh.Micro {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-36s %14s %14s %9s %14s\n", "name", "old ns/op", "new ns/op", "delta", "allocs/op")
	for _, name := range names {
		n := fresh.Micro[name]
		o, ok := old.Micro[name]
		if !ok {
			fmt.Fprintf(w, "%-36s %14s %14s %9s %14d\n", name, "-", fmtNs(n.NsPerOp), "new", n.AllocsPerOp)
			continue
		}
		allocs := fmt.Sprintf("%d", n.AllocsPerOp)
		if n.AllocsPerOp != o.AllocsPerOp {
			allocs = fmt.Sprintf("%d->%d", o.AllocsPerOp, n.AllocsPerOp)
		}
		if !usableBaseline(o.NsPerOp, n.NsPerOp) {
			fmt.Fprintf(w, "%-36s %14s %14s %9s %14s\n", name, fmtNs(o.NsPerOp), fmtNs(n.NsPerOp), "n/a", allocs)
			continue
		}
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		fmt.Fprintf(w, "%-36s %14s %14s %+8.1f%% %14s\n", name, fmtNs(o.NsPerOp), fmtNs(n.NsPerOp), delta*100, allocs)
		if compared == 0 || delta > worst {
			worst = delta
		}
		compared++
	}
	vanished := make([]string, 0)
	for name := range old.Micro {
		if _, ok := fresh.Micro[name]; !ok {
			vanished = append(vanished, name)
		}
	}
	sort.Strings(vanished)
	for _, name := range vanished {
		fmt.Fprintf(w, "%-36s %14s %14s %9s\n", name, fmtNs(old.Micro[name].NsPerOp), "-", "vanished")
	}
	return worst, compared
}

// usableBaseline reports whether a delta between the two ns/op values is
// meaningful: both finite, baseline strictly positive.
func usableBaseline(old, fresh float64) bool {
	return old > 0 && !math.IsInf(old, 0) && !math.IsNaN(fresh) && !math.IsInf(fresh, 0)
}

// fmtNs renders a ns/op value, masking non-finite garbage from corrupt
// snapshots so the table itself never shows NaN/Inf.
func fmtNs(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "?"
	}
	return fmt.Sprintf("%.1f", v)
}

// compare loads a prior snapshot from disk and diffs it against fresh.
func compare(oldPath string, fresh *Snapshot) (worst float64, compared int, err error) {
	raw, err := os.ReadFile(oldPath)
	if err != nil {
		return 0, 0, err
	}
	var old Snapshot
	if err := json.Unmarshal(raw, &old); err != nil {
		return 0, 0, fmt.Errorf("%s: %w", oldPath, err)
	}
	worst, compared = compareSnapshots(os.Stdout, &old, fresh)
	return worst, compared, nil
}
