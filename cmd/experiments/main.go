// Command experiments regenerates the tables and figures of the
// SmartWatch paper's evaluation section.
//
// Usage:
//
//	experiments [-scale S] all
//	experiments [-scale S] fig2 fig5 table4 ...
//	experiments list
//
// Scale 1 reproduces the workload sizes used for EXPERIMENTS.md; smaller
// values run proportionally faster. Output is plain text, one table per
// experiment, on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"smartwatch/internal/experiments"
)

var registry = map[string]func(float64) *experiments.Table{
	"fig2":      experiments.Fig2SwitchState,
	"fig3":      experiments.Fig3Scaling,
	"fig4":      experiments.Fig4LatencyDist,
	"fig5":      experiments.Fig5Policies,
	"fig6":      experiments.Fig6Throughput,
	"fig7":      experiments.Fig7HostOverhead,
	"fig8a":     experiments.Fig8aSSHLatency,
	"fig8b":     experiments.Fig8bForgedRST,
	"fig8c":     experiments.Fig8cPortScan,
	"fig9a":     experiments.Fig9aCovertROC,
	"fig9b":     experiments.Fig9bFingerprint,
	"fig10":     experiments.Fig10Volumetric,
	"fig11a":    experiments.Fig11aMicroburst,
	"fig11b":    experiments.Fig11bThroughput,
	"table2":    experiments.Table2Resources,
	"ablations": experiments.Ablations,
	"table3":    experiments.Table3NICs,
	"table4":    experiments.Table4Detection,
}

func names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor (1 = EXPERIMENTS.md sizes)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [-scale S] all | list | <id>...\nids: %v\n", names())
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, n := range names() {
			fmt.Println(n)
		}
		return
	}
	ids := args
	if args[0] == "all" {
		ids = names()
	}
	for _, id := range ids {
		fn, ok := registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try: experiments list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tb := fn(*scale)
		if _, err := tb.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
