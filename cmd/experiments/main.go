// Command experiments regenerates the tables and figures of the
// SmartWatch paper's evaluation section.
//
// Usage:
//
//	experiments [-scale S] [-parallel N] all
//	experiments [-scale S] [-parallel N] fig2 fig5 table4 ...
//	experiments list
//
// Scale 1 reproduces the workload sizes used for EXPERIMENTS.md; smaller
// values run proportionally faster. Independent experiments run on up to
// N concurrent workers (default: GOMAXPROCS); output is emitted in the
// requested order and is byte-identical for every N — parallelism changes
// wall-clock time, never results. Output is plain text, one table per
// experiment, on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"smartwatch/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor (1 = EXPERIMENTS.md sizes)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrently running experiments (1 = sequential)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	flag.Usage = func() {
		ids := make([]string, 0)
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
		fmt.Fprintf(os.Stderr, "usage: experiments [-scale S] [-parallel N] all | list | <id>...\nids: %v\n", ids)
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, e := range experiments.Registry() {
			fmt.Println(e.ID)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	var exps []experiments.Exp
	if args[0] == "all" {
		exps = experiments.Registry()
	} else {
		for _, id := range args {
			e, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try: experiments list)\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	start := time.Now()
	experiments.RunAll(exps, *scale, *parallel, func(r experiments.Result) {
		if _, err := r.Table.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", r.ID, r.Elapsed.Round(time.Millisecond))
	})
	fmt.Fprintf(os.Stderr, "[all %d experiments in %v at -parallel=%d]\n",
		len(exps), time.Since(start).Round(time.Millisecond), *parallel)
}
