package smartwatch_test

import (
	"fmt"

	"smartwatch"
)

// ExampleNew shows the minimal monitoring pipeline: a platform with one
// detector, fed a deterministic synthetic workload.
func ExampleNew() {
	det := smartwatch.NewPortScanDetector(smartwatch.PortScanDetectorConfig{ResponseTimeoutNs: 20e6})
	platform := smartwatch.New(smartwatch.Config{
		IntervalNs: 50e6,
		Detectors:  []smartwatch.Detector{det},
	})
	scan := smartwatch.PortScanTraffic(smartwatch.PortScanTrafficConfig{
		Seed: 1, Targets: 4, PortsPerTarget: 10, ScanDelay: 2e6, SilentFraction: 0.9,
	})
	report := platform.Run(scan.Stream())
	scanner := scan.Truth().Attackers[0]
	fmt.Printf("packets=%d scanner-flagged=%v\n", report.Counts.Total, det.Flagged(scanner))
	// Output: packets=45 scanner-flagged=true
}

// ExampleNewFlowCache uses the FlowCache standalone: per-packet flow-state
// tracking with pinning, exactly as a custom sNIC application would.
func ExampleNewFlowCache() {
	fc := smartwatch.NewFlowCache(smartwatch.DefaultFlowCacheConfig(8))
	p := smartwatch.Packet{
		Tuple: smartwatch.FiveTuple{
			SrcIP: smartwatch.MustParseAddr("10.0.0.1"), DstIP: smartwatch.MustParseAddr("10.0.0.2"),
			SrcPort: 1234, DstPort: 22, Proto: 6,
		},
		Size: 64,
	}
	rec, _ := fc.Process(&p)
	fc.Pin(p.Key()) // survive eviction until the auth outcome is known
	reverse := p.Reverse()
	rec, _ = fc.Process(&reverse) // both directions share one record
	fmt.Printf("pkts=%d pinned=%v mode=%v\n", rec.Pkts, rec.Pinned, fc.Mode())
	// Output: pkts=2 pinned=true mode=general
}

// ExampleCAIDAWorkload generates a reproducible backbone-like background
// trace; identical seeds replay identical packets.
func ExampleCAIDAWorkload() {
	cfg := smartwatch.CAIDAWorkload(2018).Config()
	cfg.Duration = 1e6 // 1 ms of virtual time
	w := smartwatch.NewWorkload(cfg)
	a, b := 0, 0
	for range w.Stream() {
		a++
	}
	for range w.Stream() {
		b++
	}
	fmt.Printf("replays-identical=%v\n", a == b && a > 0)
	// Output: replays-identical=true
}
